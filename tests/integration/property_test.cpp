// Cross-cutting property sweeps: the system must stay physically consistent
// for every workload regime (CCR presets), network model and load factor, and
// the phase-2 comparators must define deterministic total preorders.
#include <gtest/gtest.h>

#include "core/policies/ready_policies.hpp"
#include "exp/experiment.hpp"
#include "util/rng.hpp"

namespace dpjit::exp {
namespace {

struct Regime {
  const char* name;
  double load_lo, load_hi, data_lo, data_hi;
};

constexpr Regime kRegimes[] = {
    {"compute_heavy", 100, 10000, 10, 1000},
    {"transfer_heavy", 10, 1000, 100, 10000},
    {"tiny_tasks", 10, 100, 10, 100},
};

class RegimeSweep : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RegimeSweep, WorkflowsMakeProgressAndMetricsStayPhysical) {
  const auto [regime_idx, seed] = GetParam();
  const Regime& regime = kRegimes[regime_idx];
  ExperimentConfig cfg;
  cfg.algorithm = "dsmf";
  cfg.nodes = 20;
  cfg.workflows_per_node = 2;
  cfg.workflow.max_tasks = 12;
  cfg.set_load_range(regime.load_lo, regime.load_hi);
  cfg.set_data_range(regime.data_lo, regime.data_hi);
  cfg.seed = seed;
  const auto result = run_experiment(cfg);

  // Whatever the regime, the run must finish work and keep metrics physical.
  EXPECT_GT(result.workflows_finished, 0u) << regime.name;
  EXPECT_GT(result.act, 0.0);
  EXPECT_GT(result.ae, 0.0);
  EXPECT_GE(result.mean_response, result.act);
  EXPECT_GE(result.tasks_dispatched,
            result.workflows_finished);  // at least one task per workflow
  // Completion time can never beat the best possible critical path: the
  // fastest node is 16 MIPS, so ct >= min task chain time > 0. Weak but
  // universal: AE stays below the ratio between eft-averages and the best
  // possible speedup (avg capacity ~6.2 -> at most ~16/6.2 x faster + data
  // term; 5x is a safe physical ceiling).
  EXPECT_LE(result.ae, 5.0) << regime.name;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, RegimeSweep,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Values<std::uint64_t>(1, 7, 42)),
    [](const auto& info) {
      return std::string(kRegimes[std::get<0>(info.param)].name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(NetworkModelProperty, FairSharingNeverFinishesMoreThanBottleneck) {
  // Contention can only delay transfers; with the same horizon the fair model
  // can never complete more workflows than the uncontended model.
  for (std::uint64_t seed : {3u, 9u}) {
    ExperimentConfig cfg;
    cfg.algorithm = "dsmf";
    cfg.nodes = 16;
    cfg.workflows_per_node = 2;
    cfg.workflow.max_tasks = 10;
    cfg.seed = seed;
    cfg.system.horizon_s = 8 * 3600.0;  // tight horizon so the bound can bind
    const auto base = run_experiment(cfg);
    cfg.fair_sharing = true;
    const auto fair = run_experiment(cfg);
    EXPECT_LE(fair.workflows_finished, base.workflows_finished) << "seed " << seed;
  }
}

// --- phase-2 comparator properties ------------------------------------------

grid::ReadyTask random_task(util::Rng& rng, std::uint64_t seq) {
  grid::ReadyTask t;
  t.ref = TaskRef{WorkflowId{static_cast<int>(rng.uniform_int(0, 5))},
                  TaskIndex{static_cast<int>(rng.uniform_int(0, 30))}};
  t.load_mi = rng.uniform(1, 10000);
  t.rpm = rng.uniform(0, 1000);
  t.wf_makespan = rng.uniform(0, 1000);
  t.slack = t.wf_makespan - t.rpm;
  t.sufferage = rng.uniform(0, 100);
  t.arrival_seq = seq;
  return t;
}

class ReadyPolicyProperty : public ::testing::TestWithParam<std::string_view> {};

TEST_P(ReadyPolicyProperty, SelectionIsStableUnderPermutation) {
  // The winner must be the same task no matter how the candidate vector is
  // ordered - guaranteed by the arrival_seq tie-breaks.
  util::Rng rng(1234);
  const auto policy = core::make_ready_policy(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::vector<grid::ReadyTask> tasks;
    for (std::uint64_t i = 0; i < 12; ++i) tasks.push_back(random_task(rng, i));
    std::vector<const grid::ReadyTask*> view;
    for (const auto& t : tasks) view.push_back(&t);
    const grid::ReadyTask* first_winner = view[policy->select(view)];
    for (int perm = 0; perm < 5; ++perm) {
      rng.shuffle(view);
      const grid::ReadyTask* winner = view[policy->select(view)];
      EXPECT_EQ(winner->arrival_seq, first_winner->arrival_seq)
          << GetParam() << " round " << round;
    }
  }
}

TEST_P(ReadyPolicyProperty, WinnerIsNoWorseThanEveryCandidate) {
  // Spot-check the defining property of each comparator on the winner.
  util::Rng rng(99);
  const auto policy = core::make_ready_policy(GetParam());
  for (int round = 0; round < 30; ++round) {
    std::vector<grid::ReadyTask> tasks;
    for (std::uint64_t i = 0; i < 8; ++i) tasks.push_back(random_task(rng, i));
    std::vector<const grid::ReadyTask*> view;
    for (const auto& t : tasks) view.push_back(&t);
    const grid::ReadyTask& w = *view[policy->select(view)];
    for (const auto* t : view) {
      if (GetParam() == "dsmf") {
        EXPECT_LE(w.wf_makespan, t->wf_makespan);
      } else if (GetParam() == "lrpm") {
        EXPECT_GE(w.rpm, t->rpm);
      } else if (GetParam() == "slack") {
        EXPECT_LE(w.slack, t->slack);
      } else if (GetParam() == "stf") {
        EXPECT_LE(w.load_mi, t->load_mi);
      } else if (GetParam() == "ltf") {
        EXPECT_GE(w.load_mi, t->load_mi);
      } else if (GetParam() == "lsf") {
        EXPECT_GE(w.sufferage, t->sufferage);
      } else if (GetParam() == "fcfs") {
        EXPECT_LE(w.arrival_seq, t->arrival_seq);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReadyPolicyProperty,
                         ::testing::ValuesIn(core::ready_policy_names()),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace dpjit::exp
