// Simulation invariants checked over full traces: the discrete-event grid
// must never violate the physical rules of the model, for any algorithm and
// any seed in the sweep.
#include <gtest/gtest.h>

#include <map>

#include "core/policy_registry.hpp"
#include "exp/workload_factory.hpp"

namespace dpjit::exp {
namespace {

struct TracedRun {
  explicit TracedRun(const std::string& algorithm, std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.algorithm = algorithm;
    cfg.nodes = 16;
    cfg.workflows_per_node = 2;
    cfg.seed = seed;
    cfg.workflow.max_tasks = 12;
    cfg.workflow.min_data_mb = 10;
    cfg.workflow.max_data_mb = 100;
    world = std::make_unique<World>(cfg);
    world->system().trace().enable(true);
    world->run();
  }
  std::unique_ptr<World> world;
};

class InvariantSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {};

TEST_P(InvariantSweep, HoldAcrossTheWholeTrace) {
  const auto [algorithm, seed] = GetParam();
  TracedRun run(algorithm, seed);
  auto& system = run.world->system();
  const auto& records = system.trace().records();
  ASSERT_FALSE(records.empty());

  // 1. Trace times are non-decreasing (the engine's clock never goes back).
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time, records[i].time);
  }

  // 2. Single CPU: per node, EXEC_START and EXEC_END strictly alternate.
  std::map<int, bool> running;
  for (const auto& r : records) {
    if (r.kind == sim::TraceKind::kExecStart) {
      EXPECT_FALSE(running[r.node.get()]) << "node " << r.node << " started twice";
      running[r.node.get()] = true;
    } else if (r.kind == sim::TraceKind::kExecEnd) {
      EXPECT_TRUE(running[r.node.get()]) << "node " << r.node << " ended while idle";
      running[r.node.get()] = false;
    }
  }

  // 3. A task executes only after all its input transfers arrived.
  std::map<TaskRef, SimTime> last_xfer_end;
  for (const auto& r : records) {
    if (r.kind == sim::TraceKind::kTransferEnd) {
      last_xfer_end[r.task] = std::max(last_xfer_end[r.task], r.time);
    } else if (r.kind == sim::TraceKind::kExecStart) {
      const auto it = last_xfer_end.find(r.task);
      if (it != last_xfer_end.end()) {
        EXPECT_GE(r.time, it->second) << r.task;
      }
    }
  }

  // 4. Per-task runtime bookkeeping is consistent with the physics.
  for (std::size_t w = 0; w < system.workflow_count(); ++w) {
    const auto& wf = system.workflow(WorkflowId{static_cast<WorkflowId::underlying_type>(w)});
    for (std::size_t t = 0; t < wf.tasks.size(); ++t) {
      const auto& rt = wf.tasks[t];
      if (rt.state != core::TaskState::kFinished) continue;
      const TaskIndex ti{static_cast<TaskIndex::underlying_type>(t)};
      EXPECT_GE(rt.started_at, rt.dispatched_at);
      EXPECT_GE(rt.finished_at, rt.started_at);
      const double expected_duration =
          wf.dag.task(ti).load_mi / system.node(rt.exec_node).capacity_mips();
      EXPECT_NEAR(rt.finished_at - rt.started_at, expected_duration, 1e-6);
      // Dependencies: every precedent finished before this task started.
      for (TaskIndex p : wf.dag.predecessors(ti)) {
        EXPECT_GE(rt.started_at, wf.tasks[static_cast<std::size_t>(p.get())].finished_at);
      }
    }
    // 5. Finished workflow <=> all tasks finished, exit defines completion.
    if (wf.done()) {
      EXPECT_EQ(wf.finished_tasks, wf.tasks.size());
      const auto& exit_rt = wf.tasks[static_cast<std::size_t>(wf.dag.exit().get())];
      EXPECT_DOUBLE_EQ(wf.finished_at, exit_rt.finished_at);
      EXPECT_GE(wf.entry_started_at, wf.submit_time);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsBySeeds, InvariantSweep,
    ::testing::Combine(::testing::Values("dsmf", "dheft", "minmin", "sufferage", "heft", "smf"),
                       ::testing::Values<std::uint64_t>(3, 23)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(Invariants, DispatchCountMatchesTrace) {
  TracedRun run("dsmf", 9);
  auto& system = run.world->system();
  EXPECT_EQ(system.trace().count(sim::TraceKind::kDispatch), system.tasks_dispatched());
  EXPECT_EQ(system.trace().count(sim::TraceKind::kWorkflowDone), system.finished_workflows());
}

TEST(Invariants, EveryTaskExecutesExactlyOnceInStaticRuns) {
  TracedRun run("dsmf", 31);
  auto& system = run.world->system();
  std::map<TaskRef, int> starts;
  for (const auto& r : system.trace().records()) {
    if (r.kind == sim::TraceKind::kExecStart) ++starts[r.task];
  }
  for (const auto& [ref, count] : starts) EXPECT_EQ(count, 1) << ref;
}

}  // namespace
}  // namespace dpjit::exp
