#include "exp/metrics.hpp"

#include <gtest/gtest.h>

namespace dpjit::exp {
namespace {

core::WorkflowReport report(int id, double submit, double entry_start, double finish,
                            double eft) {
  core::WorkflowReport r;
  r.id = WorkflowId{id};
  r.home = NodeId{0};
  r.submit_time = submit;
  r.entry_start_time = entry_start;
  r.finish_time = finish;
  r.eft = eft;
  return r;
}

TEST(WorkflowReport, DerivedQuantities) {
  const auto r = report(1, 0.0, 100.0, 600.0, 250.0);
  EXPECT_DOUBLE_EQ(r.completion_time(), 500.0);
  EXPECT_DOUBLE_EQ(r.response_time(), 600.0);
  EXPECT_DOUBLE_EQ(r.efficiency(), 0.5);
}

TEST(MetricsCollector, ActAndAeAverages) {
  MetricsCollector m(36000.0);
  m.on_workflow_finished(report(1, 0, 0, 1000, 500));   // ct 1000, e 0.5
  m.on_workflow_finished(report(2, 0, 0, 3000, 3000));  // ct 3000, e 1.0
  EXPECT_EQ(m.finished(), 2u);
  EXPECT_DOUBLE_EQ(m.act(), 2000.0);
  EXPECT_DOUBLE_EQ(m.ae(), 0.75);
  EXPECT_DOUBLE_EQ(m.mean_response(), 2000.0);
}

TEST(MetricsCollector, EmptyIsZero) {
  MetricsCollector m(1000.0);
  EXPECT_DOUBLE_EQ(m.act(), 0.0);
  EXPECT_DOUBLE_EQ(m.ae(), 0.0);
}

TEST(MetricsCollector, ThroughputCurveCumulative) {
  MetricsCollector m(10 * 3600.0);
  m.on_workflow_finished(report(1, 0, 0, 1 * 3600.0 + 10, 1));
  m.on_workflow_finished(report(2, 0, 0, 1 * 3600.0 + 20, 1));
  m.on_workflow_finished(report(3, 0, 0, 5 * 3600.0, 1));
  const auto curve = m.throughput_curve();
  ASSERT_GE(curve.size(), 6u);
  EXPECT_DOUBLE_EQ(curve[0].value, 0.0);  // first hour: nothing yet
  EXPECT_DOUBLE_EQ(curve[1].value, 2.0);  // by hour 2
  EXPECT_DOUBLE_EQ(curve[5].value, 3.0);  // by hour 6
  EXPECT_DOUBLE_EQ(curve.back().value, 3.0);
}

TEST(MetricsCollector, ActCurveIsCumulativeMean) {
  MetricsCollector m(10 * 3600.0);
  m.on_workflow_finished(report(1, 0, 0, 1800.0, 1));            // ct 1800, bucket 0
  m.on_workflow_finished(report(2, 0, 0, 4 * 3600.0 + 200, 1));  // bucket 4
  const auto curve = m.act_curve();
  EXPECT_DOUBLE_EQ(curve[0].value, 1800.0);
  EXPECT_DOUBLE_EQ(curve[2].value, 1800.0);  // nothing new: mean unchanged
  EXPECT_DOUBLE_EQ(curve[4].value, (1800.0 + 4 * 3600.0 + 200) / 2.0);
}

TEST(MetricsCollector, AeCurveTracksEfficiency) {
  MetricsCollector m(2 * 3600.0);
  m.on_workflow_finished(report(1, 0, 0, 1000, 500));
  const auto curve = m.ae_curve();
  EXPECT_DOUBLE_EQ(curve[0].value, 0.5);
}

TEST(MetricsCollector, CycleSamplesAccumulate) {
  MetricsCollector m(1000.0);
  core::CycleSample s;
  s.time = 1.0;
  s.mean_rss_size = 10.0;
  s.mean_idle_known = 4.0;
  m.on_cycle(s);
  s.time = 2.0;
  s.mean_rss_size = 20.0;
  s.mean_idle_known = 8.0;
  m.on_cycle(s);
  EXPECT_EQ(m.samples().size(), 2u);
  // Converged stats use the last quarter of samples (here: the last one).
  EXPECT_DOUBLE_EQ(m.converged_rss_size(), 20.0);
  EXPECT_DOUBLE_EQ(m.converged_idle_known(), 8.0);
}

TEST(MetricsCollector, ValidatesConstruction) {
  EXPECT_THROW(MetricsCollector(0.0), std::invalid_argument);
  EXPECT_THROW(MetricsCollector(10.0, 0.0), std::invalid_argument);
}

TEST(MetricsCollector, EfficiencyGuardsZeroCompletion) {
  const auto r = report(1, 0, 100, 100, 50);  // ct == 0
  EXPECT_DOUBLE_EQ(r.efficiency(), 0.0);
}

}  // namespace
}  // namespace dpjit::exp
