// Property tests of the random workflow generator against the Table I
// constraints, swept over many seeds.
#include "dag/generator.hpp"

#include <gtest/gtest.h>

namespace dpjit::dag {
namespace {

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, SatisfiesTableIConstraints) {
  util::Rng rng(GetParam());
  GeneratorParams params;  // defaults = Table I
  const auto wf = generate_workflow(WorkflowId{3}, params, rng);

  // Well-formed: acyclic, unique entry/exit, fully reachable.
  EXPECT_TRUE(wf.validate().empty()) << wf.validate().front();

  // Task count: 2..30 original tasks, plus at most one virtual exit
  // (the construction guarantees a unique entry without a virtual task).
  EXPECT_GE(wf.task_count(), 2u);
  EXPECT_LE(wf.task_count(), 31u);

  for (std::size_t i = 0; i < wf.task_count(); ++i) {
    const TaskIndex t{static_cast<TaskIndex::underlying_type>(i)};
    const auto& task = wf.task(t);
    const bool virtual_task = task.load_mi == 0.0;
    if (!virtual_task) {
      EXPECT_GE(task.load_mi, params.min_load_mi);
      EXPECT_LE(task.load_mi, params.max_load_mi);
      EXPECT_GE(task.image_mb, params.min_image_mb);
      EXPECT_LE(task.image_mb, params.max_image_mb);
      // Fan-out bound: 1..5 for non-exit tasks. The virtual exit may exceed
      // nothing (it has no successors); real tasks respect the cap unless
      // their only successor is the virtual exit.
      EXPECT_LE(wf.successors(t).size(), static_cast<std::size_t>(params.max_fanout));
    }
    for (TaskIndex s : wf.successors(t)) {
      const double data = wf.edge_data(t, s);
      if (data > 0.0) {
        EXPECT_GE(data, params.min_data_mb);
        EXPECT_LE(data, params.max_data_mb);
      }
    }
  }
}

TEST_P(GeneratorProperty, EveryNonExitTaskHasASuccessor) {
  util::Rng rng(GetParam());
  const auto wf = generate_workflow(WorkflowId{1}, GeneratorParams{}, rng);
  const TaskIndex exit = wf.exit();
  for (std::size_t i = 0; i < wf.task_count(); ++i) {
    const TaskIndex t{static_cast<TaskIndex::underlying_type>(i)};
    if (t == exit) continue;
    EXPECT_FALSE(wf.successors(t).empty()) << "task " << i << " is a dead end";
  }
}

TEST_P(GeneratorProperty, DeterministicInRng) {
  util::Rng rng1(GetParam());
  util::Rng rng2(GetParam());
  const auto a = generate_workflow(WorkflowId{1}, GeneratorParams{}, rng1);
  const auto b = generate_workflow(WorkflowId{1}, GeneratorParams{}, rng2);
  ASSERT_EQ(a.task_count(), b.task_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.task_count(); ++i) {
    const TaskIndex t{static_cast<TaskIndex::underlying_type>(i)};
    EXPECT_DOUBLE_EQ(a.task(t).load_mi, b.task(t).load_mi);
    ASSERT_EQ(a.successors(t).size(), b.successors(t).size());
    for (std::size_t k = 0; k < a.successors(t).size(); ++k) {
      EXPECT_EQ(a.successors(t)[k], b.successors(t)[k]);
      EXPECT_DOUBLE_EQ(a.edge_data(t, a.successors(t)[k]), b.edge_data(t, b.successors(t)[k]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty, ::testing::Range<std::uint64_t>(1, 51));

TEST(Generator, RespectsCustomRanges) {
  util::Rng rng(5);
  GeneratorParams params;
  params.min_tasks = params.max_tasks = 10;
  params.min_load_mi = 10;
  params.max_load_mi = 1000;
  params.min_data_mb = 100;
  params.max_data_mb = 10000;
  const auto wf = generate_workflow(WorkflowId{1}, params, rng);
  EXPECT_GE(wf.task_count(), 10u);
  EXPECT_LE(wf.task_count(), 11u);  // +1 possible virtual exit
}

TEST(Generator, ValidatesParams) {
  util::Rng rng(1);
  GeneratorParams bad;
  bad.min_tasks = 5;
  bad.max_tasks = 2;
  EXPECT_THROW(generate_workflow(WorkflowId{1}, bad, rng), std::invalid_argument);
  GeneratorParams bad2;
  bad2.min_fanout = 0;
  EXPECT_THROW(generate_workflow(WorkflowId{1}, bad2, rng), std::invalid_argument);
}

TEST(Generator, ValidatesHeavyTailParams) {
  util::Rng rng(1);
  GeneratorParams zero_min;
  zero_min.min_load_mi = 0.0;
  zero_min.load_distribution = SizeDistribution::kPareto;
  EXPECT_THROW(generate_workflow(WorkflowId{1}, zero_min, rng), std::invalid_argument);
  GeneratorParams bad_shape;
  bad_shape.data_distribution = SizeDistribution::kLogNormal;
  bad_shape.data_tail_shape = 0.0;
  EXPECT_THROW(generate_workflow(WorkflowId{1}, bad_shape, rng), std::invalid_argument);
}

TEST(Generator, HeavyTailDrawsStayInsideTheRanges) {
  for (auto dist : {SizeDistribution::kLogNormal, SizeDistribution::kPareto}) {
    util::Rng rng(29);
    GeneratorParams params;
    params.load_distribution = dist;
    params.data_distribution = dist;
    params.load_tail_shape = dist == SizeDistribution::kLogNormal ? 1.2 : 1.5;
    params.data_tail_shape = params.load_tail_shape;
    for (int i = 0; i < 100; ++i) {
      const auto wf = generate_workflow(WorkflowId{1}, params, rng);
      for (std::size_t t = 0; t < wf.task_count(); ++t) {
        const auto& task = wf.task(TaskIndex{static_cast<TaskIndex::underlying_type>(t)});
        if (task.load_mi == 0.0) continue;  // virtual exit
        EXPECT_GE(task.load_mi, params.min_load_mi);
        EXPECT_LE(task.load_mi, params.max_load_mi);
      }
    }
  }
}

TEST(Generator, UniformDistributionIsBitCompatibleWithDefaults) {
  // The distribution knobs default to uniform and must not perturb the
  // pre-existing draw sequence (golden digests depend on this).
  util::Rng a(77), b(77);
  GeneratorParams defaults;
  GeneratorParams explicit_uniform;
  explicit_uniform.load_distribution = SizeDistribution::kUniform;
  explicit_uniform.data_distribution = SizeDistribution::kUniform;
  explicit_uniform.load_tail_shape = 9.9;  // ignored for uniform
  const auto wa = generate_workflow(WorkflowId{1}, defaults, a);
  const auto wb = generate_workflow(WorkflowId{1}, explicit_uniform, b);
  ASSERT_EQ(wa.task_count(), wb.task_count());
  for (std::size_t t = 0; t < wa.task_count(); ++t) {
    const TaskIndex ti{static_cast<TaskIndex::underlying_type>(t)};
    EXPECT_EQ(wa.task(ti).load_mi, wb.task(ti).load_mi);
    EXPECT_EQ(wa.task(ti).image_mb, wb.task(ti).image_mb);
  }
}

class FanoutSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FanoutSweep, RespectsFanoutBounds) {
  const auto [min_fan, max_fan] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(min_fan * 100 + max_fan));
  GeneratorParams params;
  params.min_fanout = min_fan;
  params.max_fanout = max_fan;
  params.min_tasks = 10;
  params.max_tasks = 25;
  for (int round = 0; round < 10; ++round) {
    const auto wf = generate_workflow(WorkflowId{1}, params, rng);
    EXPECT_TRUE(wf.validate().empty());
    for (std::size_t t = 0; t < wf.task_count(); ++t) {
      const TaskIndex ti{static_cast<TaskIndex::underlying_type>(t)};
      if (wf.task(ti).load_mi == 0.0) continue;  // virtual exit
      EXPECT_LE(wf.successors(ti).size(), static_cast<std::size_t>(max_fan));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, FanoutSweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 2}, std::pair{2, 3},
                                           std::pair{1, 5}, std::pair{5, 5}, std::pair{3, 8}),
                         [](const auto& info) {
                           return "fan" + std::to_string(info.param.first) + "to" +
                                  std::to_string(info.param.second);
                         });

TEST(Generator, SingleTaskWorkflow) {
  util::Rng rng(9);
  GeneratorParams params;
  params.min_tasks = params.max_tasks = 1;
  const auto wf = generate_workflow(WorkflowId{1}, params, rng);
  EXPECT_EQ(wf.task_count(), 1u);
  EXPECT_TRUE(wf.validate().empty());
}

}  // namespace
}  // namespace dpjit::dag
