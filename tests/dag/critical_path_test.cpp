#include "dag/critical_path.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"

namespace dpjit::dag {
namespace {

// Chain: a(10) -[20]-> b(30) -[40]-> c(50); avg capacity 1, bandwidth 1.
TEST(CriticalPath, ChainSumsAllTerms) {
  Workflow wf;
  auto a = wf.add_task(10, 0);
  auto b = wf.add_task(30, 0);
  auto c = wf.add_task(50, 0);
  wf.add_dependency(a, b, 20);
  wf.add_dependency(b, c, 40);
  const AverageEstimates avg{1.0, 1.0};
  EXPECT_DOUBLE_EQ(expected_finish_time(wf, avg), 150.0);
  const auto ranks = upward_ranks(wf, avg);
  EXPECT_DOUBLE_EQ(ranks[static_cast<std::size_t>(c.get())], 50.0);
  EXPECT_DOUBLE_EQ(ranks[static_cast<std::size_t>(b.get())], 120.0);
  EXPECT_DOUBLE_EQ(ranks[static_cast<std::size_t>(a.get())], 150.0);
}

TEST(CriticalPath, AveragesScaleTimes) {
  Workflow wf;
  auto a = wf.add_task(100, 0);
  auto b = wf.add_task(100, 0);
  wf.add_dependency(a, b, 50);
  // capacity 4 MIPS -> 25 s each; bandwidth 5 Mb/s -> 10 s.
  EXPECT_DOUBLE_EQ(expected_finish_time(wf, {4.0, 5.0}), 60.0);
}

TEST(CriticalPath, PicksHeavierBranch) {
  Workflow wf;
  auto a = wf.add_task(10, 0, "a");
  auto heavy = wf.add_task(100, 0, "heavy");
  auto light = wf.add_task(1, 0, "light");
  auto d = wf.add_task(10, 0, "d");
  wf.add_dependency(a, heavy, 1);
  wf.add_dependency(a, light, 1);
  wf.add_dependency(heavy, d, 1);
  wf.add_dependency(light, d, 1);
  const AverageEstimates avg{1.0, 1.0};
  EXPECT_DOUBLE_EQ(expected_finish_time(wf, avg), 10 + 1 + 100 + 1 + 10);
  const auto path = critical_path(wf, avg);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], a);
  EXPECT_EQ(path[1], heavy);
  EXPECT_EQ(path[2], d);
}

TEST(CriticalPath, TransmissionCanDominate) {
  Workflow wf;
  auto a = wf.add_task(1, 0);
  auto slow_edge = wf.add_task(1, 0);
  auto fast_edge = wf.add_task(50, 0);
  auto d = wf.add_task(1, 0);
  wf.add_dependency(a, slow_edge, 1000);  // 1000 s of transfer
  wf.add_dependency(a, fast_edge, 1);
  wf.add_dependency(slow_edge, d, 1);
  wf.add_dependency(fast_edge, d, 1);
  const auto path = critical_path(wf, {1.0, 1.0});
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], slow_edge);
}

TEST(CriticalPath, UpwardRankMonotoneAlongEdges) {
  // rank(pred) >= eet(pred) + rank(succ) > rank(succ) for positive loads.
  util::Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    const auto wf = generate_workflow(WorkflowId{1}, GeneratorParams{}, rng);
    const auto ranks = upward_ranks(wf, {6.2, 5.0});
    for (std::size_t t = 0; t < wf.task_count(); ++t) {
      const TaskIndex ti{static_cast<TaskIndex::underlying_type>(t)};
      for (TaskIndex s : wf.successors(ti)) {
        EXPECT_GE(ranks[t], ranks[static_cast<std::size_t>(s.get())]);
      }
    }
  }
}

TEST(CriticalPath, EftEqualsCriticalPathSum) {
  util::Rng rng(99);
  const auto wf = generate_workflow(WorkflowId{1}, GeneratorParams{}, rng);
  const AverageEstimates avg{6.2, 5.0};
  const auto path = critical_path(wf, avg);
  double sum = 0.0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    sum += expected_execution_time(wf.task(path[i]), avg);
    if (i + 1 < path.size()) {
      sum += expected_transmission_time(wf.edge_data(path[i], path[i + 1]), avg);
    }
  }
  EXPECT_NEAR(expected_finish_time(wf, avg), sum, 1e-9);
}

TEST(CriticalPath, ThrowsOnCycle) {
  Workflow wf;
  auto a = wf.add_task(1, 0);
  auto b = wf.add_task(1, 0);
  wf.add_dependency(a, b, 0);
  wf.add_dependency(b, a, 0);
  EXPECT_THROW(upward_ranks(wf, {1.0, 1.0}), std::logic_error);
}

}  // namespace
}  // namespace dpjit::dag
