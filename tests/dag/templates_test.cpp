#include "dag/templates.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dag/dot.hpp"

namespace dpjit::dag {
namespace {

TEST(Templates, MontageIsWellFormed) {
  const auto wf = make_montage(WorkflowId{1}, 6);
  EXPECT_TRUE(wf.validate().empty());
  // width projections + width-1 diffs + concat + bgmodel + width backgrounds
  // + add + shrink + jpeg (+ possible virtual entry/exit).
  EXPECT_GE(wf.task_count(), static_cast<std::size_t>(6 + 5 + 2 + 6 + 3));
}

TEST(Templates, MontageRejectsTinyWidth) {
  EXPECT_THROW(make_montage(WorkflowId{1}, 1), std::invalid_argument);
}

TEST(Templates, ForkJoinShape) {
  const auto wf = make_fork_join(WorkflowId{1}, 2, 4);
  EXPECT_TRUE(wf.validate().empty());
  // source + 2*(4 work + 1 join) = 11 tasks, single entry/exit already.
  EXPECT_EQ(wf.task_count(), 11u);
  EXPECT_EQ(wf.successors(wf.entry()).size(), 4u);
}

TEST(Templates, PipelineIsAChain) {
  const auto wf = make_pipeline(WorkflowId{1}, 5);
  EXPECT_TRUE(wf.validate().empty());
  EXPECT_EQ(wf.task_count(), 5u);
  EXPECT_EQ(wf.edge_count(), 4u);
  for (std::size_t i = 0; i < wf.task_count(); ++i) {
    EXPECT_LE(wf.successors(TaskIndex{static_cast<TaskIndex::underlying_type>(i)}).size(), 1u);
  }
}

TEST(Templates, DiamondSkewsLeftBranch) {
  const auto wf = make_diamond(WorkflowId{1}, 3.0);
  EXPECT_TRUE(wf.validate().empty());
  EXPECT_EQ(wf.task_count(), 4u);
}

TEST(Templates, InvalidParamsThrow) {
  EXPECT_THROW(make_fork_join(WorkflowId{1}, 0, 1), std::invalid_argument);
  EXPECT_THROW(make_pipeline(WorkflowId{1}, 0), std::invalid_argument);
  EXPECT_THROW(make_diamond(WorkflowId{1}, 0.0), std::invalid_argument);
}

TEST(Dot, ExportContainsTasksAndEdges) {
  const auto wf = make_pipeline(WorkflowId{7}, 3);
  std::ostringstream os;
  write_dot(os, wf);
  const std::string out = os.str();
  EXPECT_NE(out.find("digraph wf7"), std::string::npos);
  EXPECT_NE(out.find("stage0"), std::string::npos);
  EXPECT_NE(out.find("->"), std::string::npos);
  EXPECT_NE(out.find("}"), std::string::npos);
}

}  // namespace
}  // namespace dpjit::dag
