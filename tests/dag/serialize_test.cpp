#include "dag/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dag/generator.hpp"
#include "dag/templates.hpp"

namespace dpjit::dag {
namespace {

void expect_same(const Workflow& a, const Workflow& b) {
  ASSERT_EQ(a.task_count(), b.task_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.id(), b.id());
  for (std::size_t i = 0; i < a.task_count(); ++i) {
    const TaskIndex t{static_cast<TaskIndex::underlying_type>(i)};
    EXPECT_DOUBLE_EQ(a.task(t).load_mi, b.task(t).load_mi);
    EXPECT_DOUBLE_EQ(a.task(t).image_mb, b.task(t).image_mb);
    EXPECT_EQ(a.task(t).name, b.task(t).name);
    ASSERT_EQ(a.successors(t).size(), b.successors(t).size());
    for (TaskIndex s : a.successors(t)) {
      EXPECT_DOUBLE_EQ(a.edge_data(t, s), b.edge_data(t, s));
    }
  }
}

TEST(Serialize, RoundTripsMontage) {
  const auto wf = make_montage(WorkflowId{7}, 5);
  std::stringstream ss;
  write_workflow(ss, wf);
  const auto back = read_workflow(ss);
  expect_same(wf, back);
}

class SerializeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeProperty, RoundTripsRandomWorkflows) {
  util::Rng rng(GetParam());
  const auto wf = generate_workflow(WorkflowId{3}, GeneratorParams{}, rng);
  std::stringstream ss;
  write_workflow(ss, wf);
  expect_same(wf, read_workflow(ss));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeProperty, ::testing::Range<std::uint64_t>(1, 21));

TEST(Serialize, BatchRoundTrip) {
  std::vector<Workflow> wfs;
  wfs.push_back(make_pipeline(WorkflowId{0}, 3));
  wfs.push_back(make_diamond(WorkflowId{1}));
  std::stringstream ss;
  write_workflows(ss, wfs);
  const auto back = read_workflows(ss);
  ASSERT_EQ(back.size(), 2u);
  expect_same(wfs[0], back[0]);
  expect_same(wfs[1], back[1]);
}

TEST(Serialize, CommentsAndBlanksIgnored) {
  std::stringstream ss(
      "# a comment\n\nworkflow 5\n  task 10 2 alpha\n task 20 3\n# mid comment\nedge 0 1 7\nend\n");
  const auto wf = read_workflow(ss);
  EXPECT_EQ(wf.id().get(), 5);
  EXPECT_EQ(wf.task_count(), 2u);
  EXPECT_EQ(wf.task(TaskIndex{0}).name, "alpha");
  EXPECT_EQ(wf.task(TaskIndex{1}).name, "");
  EXPECT_DOUBLE_EQ(wf.edge_data(TaskIndex{0}, TaskIndex{1}), 7.0);
}

TEST(Serialize, MalformedInputsThrow) {
  {
    std::stringstream ss("task 1 1\n");
    EXPECT_THROW(read_workflow(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("workflow 1\ntask nope 1\nend\n");
    EXPECT_THROW(read_workflow(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("workflow 1\ntask 1 1\n");  // missing end
    EXPECT_THROW(read_workflow(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("workflow 1\nbanana\nend\n");
    EXPECT_THROW(read_workflow(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("");
    EXPECT_THROW(read_workflow(ss), std::invalid_argument);
  }
}

TEST(Serialize, EdgeValidationStillApplies) {
  std::stringstream ss("workflow 1\ntask 1 1\nedge 0 5 1\nend\n");
  EXPECT_THROW(read_workflow(ss), std::out_of_range);
}

}  // namespace
}  // namespace dpjit::dag
