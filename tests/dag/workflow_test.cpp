#include "dag/workflow.hpp"

#include <gtest/gtest.h>

namespace dpjit::dag {
namespace {

Workflow diamond() {
  Workflow wf(WorkflowId{1});
  auto a = wf.add_task(10, 1, "a");
  auto b = wf.add_task(20, 1, "b");
  auto c = wf.add_task(30, 1, "c");
  auto d = wf.add_task(40, 1, "d");
  wf.add_dependency(a, b, 5);
  wf.add_dependency(a, c, 6);
  wf.add_dependency(b, d, 7);
  wf.add_dependency(c, d, 8);
  return wf;
}

TEST(Workflow, AddTaskAssignsSequentialIndices) {
  Workflow wf;
  EXPECT_EQ(wf.add_task(1, 1).get(), 0);
  EXPECT_EQ(wf.add_task(1, 1).get(), 1);
  EXPECT_EQ(wf.task_count(), 2u);
}

TEST(Workflow, RejectsNegativeWeights) {
  Workflow wf;
  EXPECT_THROW(wf.add_task(-1, 0), std::invalid_argument);
  EXPECT_THROW(wf.add_task(0, -1), std::invalid_argument);
}

TEST(Workflow, DependencyBookkeeping) {
  auto wf = diamond();
  const TaskIndex a{0}, b{1}, c{2}, d{3};
  EXPECT_EQ(wf.edge_count(), 4u);
  EXPECT_EQ(wf.successors(a).size(), 2u);
  EXPECT_EQ(wf.predecessors(d).size(), 2u);
  EXPECT_DOUBLE_EQ(wf.edge_data(a, b), 5.0);
  EXPECT_DOUBLE_EQ(wf.edge_data(c, d), 8.0);
  EXPECT_THROW((void)wf.edge_data(a, d), std::out_of_range);
}

TEST(Workflow, RejectsBadEdges) {
  Workflow wf;
  auto a = wf.add_task(1, 1);
  auto b = wf.add_task(1, 1);
  EXPECT_THROW(wf.add_dependency(a, a, 1), std::invalid_argument);   // self-loop
  EXPECT_THROW(wf.add_dependency(a, TaskIndex{9}, 1), std::out_of_range);
  EXPECT_THROW(wf.add_dependency(a, b, -1), std::invalid_argument);  // negative data
  wf.add_dependency(a, b, 1);
  EXPECT_THROW(wf.add_dependency(a, b, 2), std::invalid_argument);   // duplicate
}

TEST(Workflow, DetectsCycle) {
  Workflow wf;
  auto a = wf.add_task(1, 1);
  auto b = wf.add_task(1, 1);
  auto c = wf.add_task(1, 1);
  wf.add_dependency(a, b, 0);
  wf.add_dependency(b, c, 0);
  EXPECT_TRUE(wf.is_acyclic());
  wf.add_dependency(c, a, 0);
  EXPECT_FALSE(wf.is_acyclic());
  EXPECT_FALSE(wf.validate().empty());
}

TEST(Workflow, EntryAndExitOfDiamond) {
  auto wf = diamond();
  EXPECT_EQ(wf.entry().get(), 0);
  EXPECT_EQ(wf.exit().get(), 3);
}

TEST(Workflow, NormalizeAddsVirtualEntryAndExit) {
  Workflow wf;
  auto a = wf.add_task(1, 1);
  auto b = wf.add_task(1, 1);
  auto c = wf.add_task(1, 1);
  auto d = wf.add_task(1, 1);
  wf.add_dependency(a, c, 1);
  wf.add_dependency(b, d, 1);
  EXPECT_EQ(wf.entry_tasks().size(), 2u);
  EXPECT_EQ(wf.exit_tasks().size(), 2u);
  wf.normalize();
  EXPECT_EQ(wf.task_count(), 6u);
  EXPECT_EQ(wf.entry_tasks().size(), 1u);
  EXPECT_EQ(wf.exit_tasks().size(), 1u);
  // Virtual tasks are zero-cost (paper Section II.A).
  EXPECT_DOUBLE_EQ(wf.task(wf.entry()).load_mi, 0.0);
  EXPECT_DOUBLE_EQ(wf.task(wf.exit()).load_mi, 0.0);
  EXPECT_TRUE(wf.validate().empty());
}

TEST(Workflow, NormalizeIdempotent) {
  auto wf = diamond();
  wf.normalize();
  const auto n = wf.task_count();
  wf.normalize();
  EXPECT_EQ(wf.task_count(), n);
}

TEST(Workflow, TopologicalOrderRespectsEdges) {
  auto wf = diamond();
  const auto order = wf.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)].get())] = i;
  for (std::size_t t = 0; t < 4; ++t) {
    for (TaskIndex s : wf.successors(TaskIndex{static_cast<TaskIndex::underlying_type>(t)})) {
      EXPECT_LT(pos[t], pos[static_cast<std::size_t>(s.get())]);
    }
  }
}

TEST(Workflow, TotalLoad) {
  auto wf = diamond();
  EXPECT_DOUBLE_EQ(wf.total_load_mi(), 100.0);
}

TEST(Workflow, ValidateFlagsUnreachableTask) {
  Workflow wf;
  auto a = wf.add_task(1, 1);
  auto b = wf.add_task(1, 1);
  wf.add_dependency(a, b, 0);
  wf.add_task(1, 1);  // isolated task: a second entry AND a second exit
  const auto issues = wf.validate();
  EXPECT_FALSE(issues.empty());
}

TEST(Workflow, ValidateEmptyWorkflow) {
  Workflow wf;
  const auto issues = wf.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("no tasks"), std::string::npos);
}

TEST(Workflow, EntryThrowsWhenAmbiguous) {
  Workflow wf;
  wf.add_task(1, 1);
  wf.add_task(1, 1);
  EXPECT_THROW((void)wf.entry(), std::logic_error);
}

}  // namespace
}  // namespace dpjit::dag
