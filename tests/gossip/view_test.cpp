#include <gtest/gtest.h>

#include <cmath>

#include "gossip/view.hpp"
#include "util/rng.hpp"

namespace dpjit::gossip {
namespace {

ResourceEntry entry(int node, double load, SimTime at, int ttl = 4) {
  return ResourceEntry{NodeId{node}, load, 2.0, at, ttl};
}

TEST(ResourceView, MergeInsertsNewEntries) {
  ResourceView v(4);
  EXPECT_TRUE(v.merge(entry(1, 10, 1.0)));
  EXPECT_TRUE(v.merge(entry(2, 20, 1.0)));
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.contains(NodeId{1}));
}

TEST(ResourceView, FresherEntryReplacesStale) {
  ResourceView v(4);
  v.merge(entry(1, 10, 1.0));
  EXPECT_TRUE(v.merge(entry(1, 99, 2.0)));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v.entries()[0].load_mi, 99.0);
}

TEST(ResourceView, StaleEntryIgnored) {
  ResourceView v(4);
  v.merge(entry(1, 10, 5.0));
  EXPECT_FALSE(v.merge(entry(1, 99, 2.0)));
  EXPECT_DOUBLE_EQ(v.entries()[0].load_mi, 10.0);
}

TEST(ResourceView, EqualTimestampKeepsHigherTtl) {
  ResourceView v(4);
  v.merge(entry(1, 10, 1.0, 1));
  EXPECT_FALSE(v.merge(entry(1, 10, 1.0, 3)));
  EXPECT_EQ(v.entries()[0].ttl, 3);
}

TEST(ResourceView, CapacityEvictsStalest) {
  ResourceView v(2);
  v.merge(entry(1, 0, 1.0));
  v.merge(entry(2, 0, 5.0));
  EXPECT_TRUE(v.merge(entry(3, 0, 3.0)));  // evicts node 1 (stamped 1.0)
  EXPECT_EQ(v.size(), 2u);
  EXPECT_FALSE(v.contains(NodeId{1}));
  EXPECT_TRUE(v.contains(NodeId{3}));
}

TEST(ResourceView, FullViewRejectsStalerThanAll) {
  ResourceView v(2);
  v.merge(entry(1, 0, 5.0));
  v.merge(entry(2, 0, 6.0));
  EXPECT_FALSE(v.merge(entry(3, 0, 1.0)));
  EXPECT_FALSE(v.contains(NodeId{3}));
}

TEST(ResourceView, EqualTimestampLowerTtlIgnored) {
  ResourceView v(4);
  v.merge(entry(1, 10, 1.0, 3));
  EXPECT_FALSE(v.merge(entry(1, 99, 1.0, 1)));
  EXPECT_EQ(v.entries()[0].ttl, 3);
  EXPECT_DOUBLE_EQ(v.entries()[0].load_mi, 10.0);  // payload not overwritten
}

TEST(ResourceView, FullViewEqualStampNewcomerRejected) {
  // Eviction requires the newcomer to be STRICTLY fresher than the stalest
  // resident; ties keep the resident (stable under duplicate delivery).
  ResourceView v(2);
  v.merge(entry(1, 0, 3.0));
  v.merge(entry(2, 0, 5.0));
  EXPECT_FALSE(v.merge(entry(3, 0, 3.0)));
  EXPECT_TRUE(v.contains(NodeId{1}));
  EXPECT_FALSE(v.contains(NodeId{3}));
}

TEST(ResourceView, EvictionReplacesStalestInPlace) {
  // Entry order is observable (neighbor selection shuffles entries in order),
  // so eviction must overwrite the stalest slot, not erase + append.
  ResourceView v(3);
  v.merge(entry(1, 0, 5.0));
  v.merge(entry(2, 0, 1.0));  // stalest, slot 1
  v.merge(entry(3, 0, 7.0));
  EXPECT_TRUE(v.merge(entry(4, 0, 2.0)));
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.entries()[0].node, NodeId{1});
  EXPECT_EQ(v.entries()[1].node, NodeId{4});  // took node 2's slot
  EXPECT_EQ(v.entries()[2].node, NodeId{3});
}

TEST(ResourceView, FindIsSlotConsistentAcrossMutations) {
  ResourceView v(3);
  for (int n = 1; n <= 3; ++n) v.merge(entry(n, 10.0 * n, n));
  v.forget(NodeId{2});       // compacts: node 3 shifts into slot 1
  v.merge(entry(4, 40, 9.0));
  ASSERT_NE(v.find(NodeId{3}), nullptr);
  EXPECT_DOUBLE_EQ(v.find(NodeId{3})->load_mi, 30.0);
  EXPECT_EQ(v.find(NodeId{2}), nullptr);
  ASSERT_NE(v.find(NodeId{4}), nullptr);
  EXPECT_DOUBLE_EQ(v.find(NodeId{4})->load_mi, 40.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v.find(v.entries()[i].node), &v.entries()[i]);
  }
}

/// Naive index-free reference implementing the documented merge semantics.
/// The production class promises to preserve this exact entry layout.
class NaiveView {
 public:
  explicit NaiveView(std::size_t capacity) : capacity_(capacity) {}

  bool merge(const ResourceEntry& entry) {
    for (auto& e : entries_) {
      if (e.node != entry.node) continue;
      if (entry.stamped_at > e.stamped_at) {
        e = entry;
        return true;
      }
      if (entry.stamped_at == e.stamped_at && entry.ttl > e.ttl) e.ttl = entry.ttl;
      return false;
    }
    if (entries_.size() < capacity_) {
      entries_.push_back(entry);
      return true;
    }
    auto stalest = std::min_element(entries_.begin(), entries_.end(),
                                    [](const ResourceEntry& a, const ResourceEntry& b) {
                                      return a.stamped_at < b.stamped_at;
                                    });
    if (stalest->stamped_at < entry.stamped_at) {
      *stalest = entry;
      return true;
    }
    return false;
  }

  bool forget(NodeId node) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->node == node) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }

  void expire(SimTime now, double max_age, NodeId self) {
    std::erase_if(entries_, [&](const ResourceEntry& e) {
      return e.node == self || (now - e.stamped_at) > max_age;
    });
  }

  [[nodiscard]] const std::vector<ResourceEntry>& entries() const { return entries_; }

 private:
  std::size_t capacity_;
  std::vector<ResourceEntry> entries_;
};

TEST(ResourceView, RandomizedDifferentialAgainstNaiveReference) {
  util::Rng rng(20260808);
  for (int round = 0; round < 20; ++round) {
    const std::size_t cap = 1 + rng.index(12);
    ResourceView fast(cap);
    NaiveView slow(cap);
    double now = 0.0;
    for (int op = 0; op < 400; ++op) {
      now += rng.uniform(0.0, 2.0);
      const int node = 1 + static_cast<int>(rng.index(20));
      const double roll = rng.uniform01();
      if (roll < 0.75) {
        // Stamps drawn near `now`, quantized so equal-stamp ties actually occur.
        const double stamp = std::floor(rng.uniform(0.0, now + 1.0));
        const auto e = ResourceEntry{NodeId{node}, rng.uniform(0.0, 50.0), 2.0, stamp,
                                     static_cast<int>(rng.index(5))};
        EXPECT_EQ(fast.merge(e), slow.merge(e));
      } else if (roll < 0.85) {
        EXPECT_EQ(fast.forget(NodeId{node}), slow.forget(NodeId{node}));
      } else {
        fast.expire(now, 5.0, NodeId{node});
        slow.expire(now, 5.0, NodeId{node});
      }
      ASSERT_EQ(fast.size(), slow.entries().size());
      for (std::size_t i = 0; i < fast.size(); ++i) {
        const auto& a = fast.entries()[i];
        const auto& b = slow.entries()[i];
        ASSERT_EQ(a.node, b.node) << "slot " << i << " diverged";
        ASSERT_EQ(a.stamped_at, b.stamped_at);
        ASSERT_EQ(a.ttl, b.ttl);
        ASSERT_EQ(fast.find(a.node), &fast.entries()[i]);
      }
    }
  }
}

TEST(ResourceView, ExpireDropsOldAndSelf) {
  ResourceView v(8);
  v.merge(entry(1, 0, 1.0));
  v.merge(entry(2, 0, 9.0));
  v.merge(entry(3, 0, 9.5));
  v.expire(/*now=*/10.0, /*max_age=*/2.0, /*self=*/NodeId{3});
  EXPECT_FALSE(v.contains(NodeId{1}));  // age 9 > 2
  EXPECT_TRUE(v.contains(NodeId{2}));
  EXPECT_FALSE(v.contains(NodeId{3}));  // self
}

TEST(ResourceView, ForgetRemovesEntry) {
  ResourceView v(4);
  v.merge(entry(1, 0, 1.0));
  EXPECT_TRUE(v.forget(NodeId{1}));
  EXPECT_FALSE(v.forget(NodeId{1}));
  EXPECT_EQ(v.size(), 0u);
}

TEST(ResourceView, AdjustLoadClampsAtZero) {
  ResourceView v(4);
  v.merge(entry(1, 10, 1.0));
  EXPECT_TRUE(v.adjust_load(NodeId{1}, 5.0));
  EXPECT_DOUBLE_EQ(v.entries()[0].load_mi, 15.0);
  EXPECT_TRUE(v.adjust_load(NodeId{1}, -100.0));
  EXPECT_DOUBLE_EQ(v.entries()[0].load_mi, 0.0);
  EXPECT_FALSE(v.adjust_load(NodeId{9}, 1.0));
}

}  // namespace
}  // namespace dpjit::gossip
