#include <gtest/gtest.h>

#include "gossip/view.hpp"

namespace dpjit::gossip {
namespace {

ResourceEntry entry(int node, double load, SimTime at, int ttl = 4) {
  return ResourceEntry{NodeId{node}, load, 2.0, at, ttl};
}

TEST(ResourceView, MergeInsertsNewEntries) {
  ResourceView v(4);
  EXPECT_TRUE(v.merge(entry(1, 10, 1.0)));
  EXPECT_TRUE(v.merge(entry(2, 20, 1.0)));
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.contains(NodeId{1}));
}

TEST(ResourceView, FresherEntryReplacesStale) {
  ResourceView v(4);
  v.merge(entry(1, 10, 1.0));
  EXPECT_TRUE(v.merge(entry(1, 99, 2.0)));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v.entries()[0].load_mi, 99.0);
}

TEST(ResourceView, StaleEntryIgnored) {
  ResourceView v(4);
  v.merge(entry(1, 10, 5.0));
  EXPECT_FALSE(v.merge(entry(1, 99, 2.0)));
  EXPECT_DOUBLE_EQ(v.entries()[0].load_mi, 10.0);
}

TEST(ResourceView, EqualTimestampKeepsHigherTtl) {
  ResourceView v(4);
  v.merge(entry(1, 10, 1.0, 1));
  EXPECT_FALSE(v.merge(entry(1, 10, 1.0, 3)));
  EXPECT_EQ(v.entries()[0].ttl, 3);
}

TEST(ResourceView, CapacityEvictsStalest) {
  ResourceView v(2);
  v.merge(entry(1, 0, 1.0));
  v.merge(entry(2, 0, 5.0));
  EXPECT_TRUE(v.merge(entry(3, 0, 3.0)));  // evicts node 1 (stamped 1.0)
  EXPECT_EQ(v.size(), 2u);
  EXPECT_FALSE(v.contains(NodeId{1}));
  EXPECT_TRUE(v.contains(NodeId{3}));
}

TEST(ResourceView, FullViewRejectsStalerThanAll) {
  ResourceView v(2);
  v.merge(entry(1, 0, 5.0));
  v.merge(entry(2, 0, 6.0));
  EXPECT_FALSE(v.merge(entry(3, 0, 1.0)));
  EXPECT_FALSE(v.contains(NodeId{3}));
}

TEST(ResourceView, ExpireDropsOldAndSelf) {
  ResourceView v(8);
  v.merge(entry(1, 0, 1.0));
  v.merge(entry(2, 0, 9.0));
  v.merge(entry(3, 0, 9.5));
  v.expire(/*now=*/10.0, /*max_age=*/2.0, /*self=*/NodeId{3});
  EXPECT_FALSE(v.contains(NodeId{1}));  // age 9 > 2
  EXPECT_TRUE(v.contains(NodeId{2}));
  EXPECT_FALSE(v.contains(NodeId{3}));  // self
}

TEST(ResourceView, ForgetRemovesEntry) {
  ResourceView v(4);
  v.merge(entry(1, 0, 1.0));
  EXPECT_TRUE(v.forget(NodeId{1}));
  EXPECT_FALSE(v.forget(NodeId{1}));
  EXPECT_EQ(v.size(), 0u);
}

TEST(ResourceView, AdjustLoadClampsAtZero) {
  ResourceView v(4);
  v.merge(entry(1, 10, 1.0));
  EXPECT_TRUE(v.adjust_load(NodeId{1}, 5.0));
  EXPECT_DOUBLE_EQ(v.entries()[0].load_mi, 15.0);
  EXPECT_TRUE(v.adjust_load(NodeId{1}, -100.0));
  EXPECT_DOUBLE_EQ(v.entries()[0].load_mi, 0.0);
  EXPECT_FALSE(v.adjust_load(NodeId{9}, 1.0));
}

}  // namespace
}  // namespace dpjit::gossip
