#include <gtest/gtest.h>

#include "gossip/mixed_gossip.hpp"

namespace dpjit::gossip {
namespace {

/// A harness with n synthetic nodes: capacity i+1 MIPS, load 10*i, all alive,
/// zero message latency, local bandwidth 2*(i+1).
class GossipHarness {
 public:
  explicit GossipHarness(int n, GossipParams params = {}) : n_(n), alive_(n, true) {
    service_ = std::make_unique<MixedGossipService>(
        engine_, params, n,
        [this](NodeId id, double& load, double& cap) {
          load = 10.0 * id.get();
          cap = 1.0 + id.get();
        },
        [this](NodeId id) { return alive_[static_cast<std::size_t>(id.get())]; },
        [](NodeId, NodeId) { return 0.001; },
        [](NodeId id) { return 2.0 * (1.0 + id.get()); }, util::Rng(42));
    // Bootstrap: every node knows its ring successor.
    for (int i = 0; i < n; ++i) {
      service_->node_joined(NodeId{i}, {NodeId{(i + 1) % n}});
    }
  }

  void run_cycles(int cycles) {
    for (int c = 0; c < cycles; ++c) {
      service_->run_cycle(static_cast<std::uint64_t>(c));
      engine_.run_until(engine_.now() + 1.0);  // flush in-flight messages
    }
  }

  sim::Engine engine_;
  int n_;
  std::vector<bool> alive_;
  std::unique_ptr<MixedGossipService> service_;
};

TEST(MixedGossip, ViewsPopulateWithinFewCycles) {
  GossipHarness h(64);
  h.run_cycles(6);
  // After TTL*log(n) style spreading, every node should know a healthy number
  // of peers (bounded by the cache size).
  const double mean = h.service_->mean_rss_size();
  EXPECT_GT(mean, 4.0);
  EXPECT_LE(mean, h.service_->effective_cache_size());
}

TEST(MixedGossip, RssBoundedByCacheSize) {
  GossipHarness h(128);
  h.run_cycles(10);
  for (int i = 0; i < h.n_; ++i) {
    EXPECT_LE(h.service_->rss(NodeId{i}).size(),
              static_cast<std::size_t>(h.service_->effective_cache_size()));
  }
}

TEST(MixedGossip, CacheSizeScalesLogarithmically) {
  sim::Engine engine;
  GossipParams params;
  auto make = [&](int n) {
    return MixedGossipService(engine, params, n, [](NodeId, double&, double&) {},
                              [](NodeId) { return true; }, [](NodeId, NodeId) { return 0.0; },
                              [](NodeId) { return 1.0; }, util::Rng(1));
  };
  const int c100 = make(100).effective_cache_size();
  const int c2000 = make(2000).effective_cache_size();
  EXPECT_GE(c100, 8);
  EXPECT_LE(c100, 30);
  EXPECT_GE(c2000, c100);  // grows with n...
  EXPECT_LE(c2000, 30);    // ...but stays bounded (Fig. 11a)
}

TEST(MixedGossip, AggregationConvergesToTrueMeans) {
  const int n = 64;
  GossipParams params;
  params.aggregation_epoch_cycles = 10;
  GossipHarness h(n, params);
  h.run_cycles(25);  // two full epochs
  // True mean capacity: mean(1..n) = (n+1)/2; bandwidth double that.
  const double true_cap = (n + 1) / 2.0;
  int close = 0;
  for (int i = 0; i < n; ++i) {
    const auto avg = h.service_->averages(NodeId{i});
    if (std::abs(avg.capacity_mips - true_cap) / true_cap < 0.25) ++close;
  }
  // Push-pull averaging converges exponentially; most nodes should be close.
  EXPECT_GT(close, n * 3 / 4);
}

TEST(MixedGossip, FreshStateOverwritesStale) {
  GossipHarness h(16);
  h.run_cycles(8);
  // All views carry entries stamped within the staleness bound.
  for (int i = 0; i < h.n_; ++i) {
    for (const auto& e : h.service_->rss(NodeId{i}).entries()) {
      EXPECT_GE(e.stamped_at, 0.0);
      EXPECT_LE(e.stamped_at, h.engine_.now());
    }
  }
}

TEST(MixedGossip, DeadNodesFadeFromViews) {
  GossipParams params;
  params.staleness_bound_s = 2.0;  // with 1s "cycles" in the harness
  params.cycle_s = 1.0;
  GossipHarness h(32, params);
  h.run_cycles(6);
  // Kill node 5, keep gossiping; its entries must disappear.
  h.alive_[5] = false;
  h.service_->node_left(NodeId{5});
  h.run_cycles(6);
  for (int i = 0; i < h.n_; ++i) {
    if (i == 5) continue;
    EXPECT_FALSE(h.service_->rss(NodeId{i}).contains(NodeId{5}))
        << "node " << i << " still believes in dead node 5";
  }
}

TEST(MixedGossip, JoinedNodeIntegrates) {
  GossipHarness h(32);
  h.alive_[7] = false;
  h.service_->node_left(NodeId{7});
  h.run_cycles(4);
  h.alive_[7] = true;
  h.service_->node_joined(NodeId{7}, {NodeId{0}, NodeId{1}});
  h.run_cycles(6);
  EXPECT_GT(h.service_->rss(NodeId{7}).size(), 2u);
}

TEST(MixedGossip, MessageCounterAdvances) {
  GossipHarness h(16);
  const auto before = h.service_->messages_sent();
  h.run_cycles(2);
  EXPECT_GT(h.service_->messages_sent(), before);
}

TEST(MixedGossip, MeanIdleKnownCountsZeroLoad) {
  // Node 0 has load 0 (10*0); others positive.
  GossipHarness h(16);
  h.run_cycles(6);
  EXPECT_GE(h.service_->mean_idle_known(), 0.0);
  EXPECT_LE(h.service_->mean_idle_known(), h.service_->mean_rss_size());
}

TEST(MixedGossip, EpochBoundaryPublishesConvergedValue) {
  GossipParams params;
  params.aggregation_epoch_cycles = 5;
  GossipHarness h(32, params);
  // Before the first epoch completes, nodes publish their local observation.
  const auto before = h.service_->averages(NodeId{0});
  EXPECT_DOUBLE_EQ(before.capacity_mips, 1.0);  // node 0's own capacity
  h.run_cycles(6);  // crosses the epoch boundary at cycle 5
  const auto after = h.service_->averages(NodeId{0});
  // The published value moved toward the true mean ((n+1)/2 = 16.5).
  EXPECT_GT(after.capacity_mips, before.capacity_mips);
}

TEST(MixedGossip, BytesAccountingGrowsWithMessages) {
  GossipHarness h(16);
  EXPECT_EQ(h.service_->bytes_sent(), 0u);
  h.run_cycles(3);
  EXPECT_GT(h.service_->bytes_sent(), 0u);
  // Every message costs at least the 20-byte header.
  EXPECT_GE(h.service_->bytes_sent(), h.service_->messages_sent() * 20);
}

TEST(MixedGossip, NoSelfEntries) {
  GossipHarness h(24);
  h.run_cycles(6);
  for (int i = 0; i < h.n_; ++i) {
    EXPECT_FALSE(h.service_->rss(NodeId{i}).contains(NodeId{i}));
  }
}

}  // namespace
}  // namespace dpjit::gossip
