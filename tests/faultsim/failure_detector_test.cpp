#include "gossip/failure_detector.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dpjit::gossip {
namespace {

constexpr NodeId kMe{0};
constexpr NodeId kPeer{1};

TEST(FailureDetector, StartsAllAlive) {
  FailureDetector fd(4);
  for (int o = 0; o < 4; ++o) {
    for (int p = 0; p < 4; ++p) {
      EXPECT_EQ(fd.state(NodeId{o}, NodeId{p}), PeerState::kAlive);
    }
  }
}

TEST(FailureDetector, MissedProbeSuspectsThenSweepDeclaresDead) {
  FailureDetector fd(4);
  fd.probe_missed(kMe, kPeer, /*now=*/100.0, /*suspect_timeout_s=*/50.0);
  EXPECT_EQ(fd.state(kMe, kPeer), PeerState::kSuspect);
  EXPECT_EQ(fd.suspicions(), 1u);

  std::vector<NodeId> dead;
  fd.sweep(kMe, /*now=*/149.0, [&](NodeId n) { dead.push_back(n); });
  EXPECT_TRUE(dead.empty());  // deadline is 150, not reached yet
  fd.sweep(kMe, 150.0, [&](NodeId n) { dead.push_back(n); });
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], kPeer);
  EXPECT_TRUE(fd.believes_dead(kMe, kPeer));
  EXPECT_EQ(fd.declared_dead(), 1u);
}

TEST(FailureDetector, DirectEvidenceRefutesSuspicionAndRevivesDead) {
  FailureDetector fd(4);
  fd.probe_missed(kMe, kPeer, 100.0, 50.0);
  fd.direct_evidence(kMe, kPeer, 120.0);
  EXPECT_EQ(fd.state(kMe, kPeer), PeerState::kAlive);
  EXPECT_EQ(fd.refutations(), 1u);

  fd.probe_missed(kMe, kPeer, 200.0, 50.0);
  fd.sweep(kMe, 250.0, [](NodeId) {});
  ASSERT_TRUE(fd.believes_dead(kMe, kPeer));
  fd.direct_evidence(kMe, kPeer, 260.0);
  EXPECT_EQ(fd.state(kMe, kPeer), PeerState::kAlive);
  EXPECT_EQ(fd.refutations(), 2u);
}

TEST(FailureDetector, RepeatedMissesKeepTheOriginalDeadline) {
  FailureDetector fd(4);
  fd.probe_missed(kMe, kPeer, 100.0, 50.0);
  fd.probe_missed(kMe, kPeer, 140.0, 50.0);  // must NOT push the deadline to 190
  std::vector<NodeId> dead;
  fd.sweep(kMe, 150.0, [&](NodeId n) { dead.push_back(n); });
  EXPECT_EQ(dead.size(), 1u);
  EXPECT_EQ(fd.suspicions(), 1u);
}

TEST(FailureDetector, IndirectEvidenceDoesNotRefuteSuspicion) {
  FailureDetector fd(4);
  fd.probe_missed(kMe, kPeer, 100.0, 50.0);
  // A gossiped entry is accepted (returns true) but only a DIRECT message
  // proves the path back works: the suspicion must stand.
  EXPECT_TRUE(fd.indirect_evidence(kMe, kPeer, 140.0));
  EXPECT_EQ(fd.state(kMe, kPeer), PeerState::kSuspect);
}

TEST(FailureDetector, StaleRumorsCannotResurrectTheDead) {
  FailureDetector fd(4);
  fd.probe_missed(kMe, kPeer, 100.0, 50.0);
  fd.sweep(kMe, 150.0, [](NodeId) {});
  ASSERT_TRUE(fd.believes_dead(kMe, kPeer));
  // Snapshots at or before the death declaration are stale rumors: dropped.
  EXPECT_FALSE(fd.indirect_evidence(kMe, kPeer, 120.0));
  EXPECT_FALSE(fd.indirect_evidence(kMe, kPeer, 150.0));
  EXPECT_TRUE(fd.believes_dead(kMe, kPeer));
  // A snapshot post-dating the declaration proves a rejoin: revived.
  EXPECT_TRUE(fd.indirect_evidence(kMe, kPeer, 151.0));
  EXPECT_EQ(fd.state(kMe, kPeer), PeerState::kAlive);
}

TEST(FailureDetector, AnsweredSinceRequiresAliveContactAtOrAfter) {
  FailureDetector fd(4);
  EXPECT_FALSE(fd.answered_since(kMe, kPeer, 10.0));  // no contact yet
  fd.direct_evidence(kMe, kPeer, 20.0);
  EXPECT_TRUE(fd.answered_since(kMe, kPeer, 10.0));
  EXPECT_TRUE(fd.answered_since(kMe, kPeer, 20.0));
  EXPECT_FALSE(fd.answered_since(kMe, kPeer, 21.0));
}

TEST(FailureDetector, SweepReportsAscendingPeerIds) {
  FailureDetector fd(8);
  for (const int p : {5, 2, 7}) fd.probe_missed(kMe, NodeId{p}, 100.0, 10.0);
  std::vector<int> dead;
  fd.sweep(kMe, 200.0, [&](NodeId n) { dead.push_back(static_cast<int>(n.get())); });
  EXPECT_EQ(dead, (std::vector<int>{2, 5, 7}));
}

TEST(FailureDetector, BeliefsArePerObserver) {
  FailureDetector fd(4);
  fd.probe_missed(kMe, kPeer, 100.0, 50.0);
  fd.sweep(kMe, 200.0, [](NodeId) {});
  EXPECT_TRUE(fd.believes_dead(kMe, kPeer));
  EXPECT_FALSE(fd.believes_dead(NodeId{2}, kPeer));
  EXPECT_FALSE(fd.believes_dead(kPeer, kMe));
}

TEST(FailureDetector, ResetObserverClearsItsBeliefsOnly) {
  FailureDetector fd(4);
  fd.probe_missed(kMe, kPeer, 100.0, 50.0);
  fd.probe_missed(NodeId{2}, kPeer, 100.0, 50.0);
  fd.sweep(kMe, 200.0, [](NodeId) {});
  fd.sweep(NodeId{2}, 200.0, [](NodeId) {});
  fd.reset_observer(kMe);
  EXPECT_EQ(fd.state(kMe, kPeer), PeerState::kAlive);
  EXPECT_TRUE(fd.believes_dead(NodeId{2}, kPeer));
}

}  // namespace
}  // namespace dpjit::gossip
