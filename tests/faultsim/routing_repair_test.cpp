// Incremental routing repair under link failure/recovery (sim::FaultPlan
// waves). The load-bearing property is the differential at the bottom:
// set_link_state's row repairs must reproduce EXACTLY what a from-scratch
// build over the surviving links produces, for any fail/recover sequence.
#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace dpjit::net {
namespace {

//   0 --(bw 10, lat 1)-- 1 --(bw 2, lat 1)-- 2
//   0 --------(bw 5, lat 5)---------------- 2
Topology triangle() {
  return Topology::from_links(3, {{NodeId{0}, NodeId{1}, 10.0, 1.0},
                                  {NodeId{1}, NodeId{2}, 2.0, 1.0},
                                  {NodeId{0}, NodeId{2}, 5.0, 5.0}});
}

TEST(RoutingRepair, FailedLinkReroutesAroundIt) {
  const auto topo = triangle();
  Routing r(topo, 1);
  ASSERT_DOUBLE_EQ(r.latency_s(NodeId{0}, NodeId{2}), 2.0);  // via node 1

  r.set_link_state(LinkId{1}, false);  // cut 1 -- 2
  EXPECT_FALSE(r.link_state(LinkId{1}));
  EXPECT_DOUBLE_EQ(r.latency_s(NodeId{0}, NodeId{2}), 5.0);  // direct now
  EXPECT_DOUBLE_EQ(r.bandwidth_mbps(NodeId{0}, NodeId{2}), 5.0);
  EXPECT_EQ(r.hops(NodeId{0}, NodeId{2}), 1);
  // 1 -> 2 detours through 0: latency 1 + 5, bottleneck min(10, 5).
  EXPECT_DOUBLE_EQ(r.latency_s(NodeId{1}, NodeId{2}), 6.0);
  EXPECT_DOUBLE_EQ(r.bandwidth_mbps(NodeId{1}, NodeId{2}), 5.0);
}

TEST(RoutingRepair, DisconnectionYieldsUnreachable) {
  // 0 -- 1 -- 2 line: cutting 1--2 isolates node 2.
  const auto topo = Topology::from_links(
      3, {{NodeId{0}, NodeId{1}, 10.0, 1.0}, {NodeId{1}, NodeId{2}, 2.0, 1.0}});
  Routing r(topo, 1);
  r.set_link_state(LinkId{1}, false);
  EXPECT_TRUE(std::isinf(r.latency_s(NodeId{0}, NodeId{2})));
  EXPECT_DOUBLE_EQ(r.bandwidth_mbps(NodeId{0}, NodeId{2}), 0.0);
  EXPECT_TRUE(r.path_links(NodeId{0}, NodeId{2}).empty());
  r.set_link_state(LinkId{1}, true);
  EXPECT_DOUBLE_EQ(r.latency_s(NodeId{0}, NodeId{2}), 2.0);
}

TEST(RoutingRepair, RecoveryRestoresTheOriginalMatrices) {
  const auto topo = triangle();
  Routing fresh(topo, 1);
  Routing r(topo, 1);
  r.set_link_state(LinkId{0}, false);
  r.set_link_state(LinkId{0}, true);
  for (int u = 0; u < 3; ++u) {
    for (int v = 0; v < 3; ++v) {
      EXPECT_EQ(r.latency_s(NodeId{u}, NodeId{v}), fresh.latency_s(NodeId{u}, NodeId{v}));
      EXPECT_EQ(r.bandwidth_mbps(NodeId{u}, NodeId{v}), fresh.bandwidth_mbps(NodeId{u}, NodeId{v}));
      EXPECT_EQ(r.hops(NodeId{u}, NodeId{v}), fresh.hops(NodeId{u}, NodeId{v}));
    }
  }
}

TEST(RoutingRepair, OffTreeLinkTouchesNoRows) {
  // The direct 0--2 link (lat 5) loses to the 2-hop path (lat 2), so no
  // shortest-path tree uses it: failing or restoring it must repair nothing.
  const auto topo = triangle();
  Routing r(topo, 1);
  r.set_link_state(LinkId{2}, false);
  EXPECT_EQ(r.repaired_rows(), 0u);
  r.set_link_state(LinkId{2}, true);
  EXPECT_EQ(r.repaired_rows(), 0u);
  EXPECT_DOUBLE_EQ(r.latency_s(NodeId{0}, NodeId{2}), 2.0);
}

TEST(RoutingRepair, RedundantStateChangesAreNoOps) {
  const auto topo = triangle();
  Routing r(topo, 1);
  r.set_link_state(LinkId{0}, true);  // already up
  EXPECT_EQ(r.repaired_rows(), 0u);
  r.set_link_state(LinkId{0}, false);
  const std::uint64_t after_fail = r.repaired_rows();
  r.set_link_state(LinkId{0}, false);  // already down
  EXPECT_EQ(r.repaired_rows(), after_fail);
}

TEST(RoutingRepair, MeanPairBandwidthStaysFrozen) {
  // eft ranks against the healthy-network average by design; repairs must not
  // silently move it.
  const auto topo = triangle();
  Routing r(topo, 1);
  const double healthy = r.initial_mean_pair_bandwidth_mbps();
  r.set_link_state(LinkId{0}, false);
  EXPECT_DOUBLE_EQ(r.initial_mean_pair_bandwidth_mbps(), healthy);
}

TEST(RoutingRepair, RepairMatchesFullRebuildOnRandomWaxmanSequences) {
  TopologyParams params;
  params.node_count = 40;
  util::Rng topo_rng(11);
  const auto topo = Topology::generate_waxman(params, topo_rng);
  Routing live(topo, 1);

  std::vector<char> up(topo.link_count(), 1);
  util::Rng fault_rng(99);
  for (int step = 0; step < 25; ++step) {
    const auto raw = fault_rng.index(topo.link_count());
    const auto l = LinkId{static_cast<LinkId::underlying_type>(raw)};
    up[raw] = up[raw] ? 0 : 1;
    live.set_link_state(l, up[raw] != 0);

    // Reference: a from-scratch build over only the surviving links.
    std::vector<Link> surviving;
    for (std::size_t i = 0; i < topo.link_count(); ++i) {
      if (up[i]) surviving.push_back(topo.links()[i]);
    }
    const auto reduced = Topology::from_links(topo.node_count(), std::move(surviving));
    Routing ref(reduced, 1);
    for (int u = 0; u < topo.node_count(); ++u) {
      for (int v = 0; v < topo.node_count(); ++v) {
        const double ll = live.latency_s(NodeId{u}, NodeId{v});
        const double rl = ref.latency_s(NodeId{u}, NodeId{v});
        if (std::isinf(rl)) {
          ASSERT_TRUE(std::isinf(ll)) << "step " << step << " pair " << u << "->" << v;
          continue;
        }
        ASSERT_EQ(ll, rl) << "step " << step << " pair " << u << "->" << v;
        ASSERT_EQ(live.bandwidth_mbps(NodeId{u}, NodeId{v}),
                  ref.bandwidth_mbps(NodeId{u}, NodeId{v}))
            << "step " << step << " pair " << u << "->" << v;
        ASSERT_EQ(live.hops(NodeId{u}, NodeId{v}), ref.hops(NodeId{u}, NodeId{v}))
            << "step " << step << " pair " << u << "->" << v;
      }
    }
  }
  EXPECT_GT(live.repaired_rows(), 0u);
}

}  // namespace
}  // namespace dpjit::net
