#include "sim/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace dpjit::sim {
namespace {

/// One recorded handler invocation: (time, id, went_down).
struct Event {
  SimTime at;
  int id;
  bool down;
  bool operator==(const Event&) const = default;
};

TEST(FaultPlan, ZeroPlanSchedulesNothingAndDrawsDefaults) {
  Engine eng;
  FaultParams p;
  p.force_attach = true;
  FaultPlan plan(eng, p, /*nodes=*/10, /*links=*/10, util::Rng(42).fork("faults"));
  plan.start();
  EXPECT_EQ(eng.pending(), 0u);  // the neutrality invariant: no events at all
  for (int i = 0; i < 50; ++i) {
    const MessageFate fate = plan.draw_message_fate();
    EXPECT_FALSE(fate.lost);
    EXPECT_EQ(fate.copies, 1);
    EXPECT_DOUBLE_EQ(fate.extra_delay_s, 0.0);
  }
  EXPECT_EQ(plan.messages_lost(), 0u);
  EXPECT_EQ(plan.messages_duplicated(), 0u);
  EXPECT_EQ(plan.messages_delayed(), 0u);
}

TEST(FaultPlan, CertainLossLosesEveryMessage) {
  Engine eng;
  FaultParams p;
  p.msg_loss_p = 1.0;
  FaultPlan plan(eng, p, 10, 10, util::Rng(42).fork("faults"));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(plan.draw_message_fate().lost);
  EXPECT_EQ(plan.messages_lost(), 100u);
}

TEST(FaultPlan, CertainDuplicationDeliversTwice) {
  Engine eng;
  FaultParams p;
  p.msg_dup_p = 1.0;
  FaultPlan plan(eng, p, 10, 10, util::Rng(42).fork("faults"));
  for (int i = 0; i < 100; ++i) {
    const MessageFate fate = plan.draw_message_fate();
    EXPECT_FALSE(fate.lost);
    EXPECT_EQ(fate.copies, 2);
  }
  EXPECT_EQ(plan.messages_duplicated(), 100u);
}

TEST(FaultPlan, CertainDelayStaysInConfiguredRange) {
  Engine eng;
  FaultParams p;
  p.msg_delay_p = 1.0;
  p.msg_delay_max_s = 60.0;
  FaultPlan plan(eng, p, 10, 10, util::Rng(42).fork("faults"));
  for (int i = 0; i < 100; ++i) {
    const MessageFate fate = plan.draw_message_fate();
    EXPECT_GE(fate.extra_delay_s, 0.0);
    EXPECT_LE(fate.extra_delay_s, 60.0);
  }
  EXPECT_EQ(plan.messages_delayed(), 100u);
}

FaultParams wave_params() {
  FaultParams p;
  p.link_wave_period_s = 100.0;
  p.link_first_wave_s = 50.0;
  p.link_fail_fraction = 0.3;
  p.link_downtime_s = 40.0;
  return p;
}

std::vector<Event> run_link_waves(const FaultParams& p, SimTime until) {
  Engine eng;
  FaultPlan plan(eng, p, 10, 20, util::Rng(42).fork("faults"));
  std::vector<Event> events;
  plan.set_link_handlers(
      [&](LinkId l) { events.push_back({eng.now(), static_cast<int>(l.get()), true}); },
      [&](LinkId l) { events.push_back({eng.now(), static_cast<int>(l.get()), false}); });
  plan.start();
  eng.run_until(until);
  return events;
}

TEST(FaultPlan, LinkWavesFailAndRecover) {
  Engine eng;
  FaultParams p = wave_params();
  FaultPlan plan(eng, p, 10, 20, util::Rng(42).fork("faults"));
  int downs = 0;
  int ups = 0;
  plan.set_link_handlers([&](LinkId) { ++downs; }, [&](LinkId) { ++ups; });
  plan.start();
  eng.run_until(500.0);
  EXPECT_GT(downs, 0);
  EXPECT_GT(ups, 0);
  EXPECT_GE(downs, ups);  // last wave's recoveries may lie past the horizon
  EXPECT_EQ(plan.link_failures(), static_cast<std::uint64_t>(downs));
  EXPECT_EQ(plan.link_recoveries(), static_cast<std::uint64_t>(ups));
}

TEST(FaultPlan, LinkWavesAreSeedDeterministic) {
  const auto a = run_link_waves(wave_params(), 500.0);
  const auto b = run_link_waves(wave_params(), 500.0);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FaultPlan, PermanentLinkFailuresNeverRecover) {
  FaultParams p = wave_params();
  p.link_permanent_p = 1.0;
  Engine eng;
  FaultPlan plan(eng, p, 10, 20, util::Rng(42).fork("faults"));
  std::vector<LinkId> downed;
  plan.set_link_handlers([&](LinkId l) { downed.push_back(l); }, [&](LinkId) { FAIL(); });
  plan.start();
  eng.run_until(1000.0);
  EXPECT_GT(plan.link_failures(), 0u);
  EXPECT_EQ(plan.link_recoveries(), 0u);
  for (const LinkId l : downed) EXPECT_TRUE(plan.link_down(l));
}

TEST(FaultPlan, CrashExemptPrefixNeverCrashes) {
  FaultParams p;
  p.crash_period_s = 100.0;
  p.crash_first_s = 50.0;
  p.crash_fraction = 1.0;
  p.crash_restart_s = 0.0;  // permanent crashes
  p.crash_exempt_fraction = 0.5;
  Engine eng;
  FaultPlan plan(eng, p, /*nodes=*/10, /*links=*/20, util::Rng(42).fork("faults"));
  std::vector<int> crashed;
  plan.set_node_handlers([&](NodeId n) { crashed.push_back(static_cast<int>(n.get())); },
                         [&](NodeId) { FAIL(); });
  plan.start();
  eng.run_until(1000.0);
  // Every non-exempt node crashed exactly once; the home prefix never did.
  EXPECT_EQ(plan.node_crashes(), 5u);
  EXPECT_EQ(plan.node_restarts(), 0u);
  for (const int n : crashed) {
    EXPECT_GE(n, 5) << "exempt home-prefix node " << n << " crashed";
    EXPECT_TRUE(plan.node_down(NodeId{n}));
  }
}

TEST(FaultPlan, CrashedNodesRestartAfterDowntime) {
  FaultParams p;
  p.crash_period_s = 200.0;
  p.crash_first_s = 50.0;
  p.crash_fraction = 0.5;
  p.crash_restart_s = 30.0;
  Engine eng;
  FaultPlan plan(eng, p, 10, 20, util::Rng(42).fork("faults"));
  std::vector<Event> events;
  plan.set_node_handlers(
      [&](NodeId n) { events.push_back({eng.now(), static_cast<int>(n.get()), true}); },
      [&](NodeId n) { events.push_back({eng.now(), static_cast<int>(n.get()), false}); });
  plan.start();
  eng.run_until(1000.0);
  EXPECT_GT(plan.node_crashes(), 0u);
  EXPECT_EQ(plan.node_restarts(), plan.node_crashes());
  // Each restart happens exactly crash_restart_s after its crash.
  for (const Event& e : events) {
    if (e.down) continue;
    const auto crash = std::find_if(events.begin(), events.end(), [&](const Event& c) {
      return c.down && c.id == e.id && c.at == e.at - 30.0;
    });
    EXPECT_NE(crash, events.end()) << "restart of node " << e.id << " without matching crash";
    EXPECT_FALSE(plan.node_down(NodeId{e.id}));
  }
}

TEST(FaultPlan, StopCancelsFutureWaves) {
  FaultParams p = wave_params();
  Engine eng;
  FaultPlan plan(eng, p, 10, 20, util::Rng(42).fork("faults"));
  plan.set_link_handlers([](LinkId) {}, [](LinkId) {});
  plan.start();
  eng.run_until(60.0);  // first wave fired
  const std::uint64_t failures = plan.link_failures();
  EXPECT_GT(failures, 0u);
  plan.stop();
  eng.run_until(1000.0);
  EXPECT_EQ(plan.link_failures(), failures);
}

}  // namespace
}  // namespace dpjit::sim
