// End-to-end fault injection through exp::World: message-level gossip with
// SWIM suspicion, link failure waves with transfer retries, crash/restart
// waves with task re-offer - all deterministic under a fixed seed.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "exp/workload_factory.hpp"

namespace dpjit::exp {
namespace {

ExperimentConfig small_world() {
  ExperimentConfig cfg;
  cfg.nodes = 40;
  cfg.workflows_per_node = 2;
  cfg.routing_threads = 1;
  return cfg;
}

std::uint64_t digest_of(const ExperimentConfig& cfg) {
  return result_digest(run_experiment(cfg));
}

TEST(FaultWorld, MessageGossipDisseminatesWithoutTheOracle) {
  ExperimentConfig cfg = small_world();
  cfg.system.gossip.message_level = true;
  // A budget the protocol never exhausts: with no faults and no rate-limiter
  // silence, every SYNC gets its ACK1.
  cfg.system.gossip.round_message_budget = 1000;
  World w(cfg);
  w.run();
  const auto& gossip = w.system().gossip_service();
  ASSERT_TRUE(gossip.message_level());
  ASSERT_NE(gossip.detector(), nullptr);
  // Views fill from real SYNC/ACK1/ACK2 exchanges, not from shared state.
  EXPECT_GT(gossip.mean_rss_size(), 5.0);
  EXPECT_GT(gossip.messages_sent(), 0u);
  EXPECT_EQ(gossip.messages_suppressed(), 0u);
  EXPECT_GT(w.system().finished_workflows(), 0u);
  // No faults, no churn, no suppressed replies: nobody is wrongly declared dead.
  EXPECT_EQ(gossip.detector()->declared_dead(), 0u);
}

TEST(FaultWorld, TightMessageBudgetCausesRefutedSuspicions) {
  // The default budget (3 * fanout + 4) is deliberately tight: replies a
  // rate-limited node never sends look like missed probes. Those false
  // suspicions must be refuted by later direct contact, not accumulate.
  ExperimentConfig cfg = small_world();
  cfg.system.gossip.message_level = true;
  World w(cfg);
  w.run();
  const auto& gossip = w.system().gossip_service();
  EXPECT_GT(gossip.messages_suppressed(), 0u);
  ASSERT_NE(gossip.detector(), nullptr);
  EXPECT_GT(gossip.detector()->suspicions(), 0u);
  EXPECT_GT(gossip.detector()->refutations(), 0u);
  EXPECT_GT(w.system().finished_workflows(), 0u);
}

TEST(FaultWorld, MessageGossipIsDeterministic) {
  ExperimentConfig cfg = small_world();
  cfg.system.gossip.message_level = true;
  EXPECT_EQ(digest_of(cfg), digest_of(cfg));
}

ExperimentConfig lossy_world() {
  ExperimentConfig cfg = small_world();
  cfg.system.gossip.message_level = true;
  cfg.faults.msg_loss_p = 0.10;
  cfg.faults.msg_dup_p = 0.05;
  cfg.faults.msg_delay_p = 0.20;
  cfg.faults.msg_delay_max_s = 60.0;
  return cfg;
}

TEST(FaultWorld, LossyGossipDrawsEveryFaultKindAndStillWorks) {
  World w(lossy_world());
  w.run();
  ASSERT_NE(w.fault_plan(), nullptr);
  EXPECT_GT(w.fault_plan()->messages_lost(), 0u);
  EXPECT_GT(w.fault_plan()->messages_duplicated(), 0u);
  EXPECT_GT(w.fault_plan()->messages_delayed(), 0u);
  EXPECT_GT(w.system().finished_workflows(), 0u);
}

TEST(FaultWorld, LossyGossipIsDeterministic) {
  EXPECT_EQ(digest_of(lossy_world()), digest_of(lossy_world()));
}

ExperimentConfig link_wave_world() {
  ExperimentConfig cfg = small_world();
  cfg.faults.link_wave_period_s = 3600.0;
  cfg.faults.link_first_wave_s = 1800.0;
  cfg.faults.link_fail_fraction = 0.30;
  cfg.faults.link_downtime_s = 1200.0;
  cfg.system.transfer_retry.max_attempts = 5;
  cfg.system.transfer_retry.backoff_base_s = 30.0;
  return cfg;
}

TEST(FaultWorld, LinkWavesAbortTransfersAndRetriesRecover) {
  World w(link_wave_world());
  w.run();
  ASSERT_NE(w.fault_plan(), nullptr);
  EXPECT_GT(w.fault_plan()->link_failures(), 0u);
  EXPECT_GT(w.fault_plan()->link_recoveries(), 0u);
  // Some in-flight transfers crossed a failed link and were aborted...
  EXPECT_GT(w.system().transfers().link_aborts(), 0u);
  // ...yet the retry/backoff path kept the run productive.
  EXPECT_GT(w.system().finished_workflows(), 0u);
}

TEST(FaultWorld, LinkWavesAreDeterministic) {
  EXPECT_EQ(digest_of(link_wave_world()), digest_of(link_wave_world()));
}

ExperimentConfig crash_world() {
  ExperimentConfig cfg = small_world();
  cfg.system.gossip.message_level = true;
  // Lossy control traffic on top of the crashes: lost probes produce FALSE
  // suspicions of alive executors, which is what the re-offer path handles
  // (real crashes fail their tasks directly through handle_leave).
  cfg.faults.msg_loss_p = 0.15;
  cfg.faults.crash_period_s = 3600.0;
  cfg.faults.crash_first_s = 1800.0;
  cfg.faults.crash_fraction = 0.15;
  cfg.faults.crash_restart_s = 1200.0;
  cfg.faults.crash_exempt_fraction = 0.5;  // keep the home prefix up
  cfg.system.transfer_retry.max_attempts = 4;
  return cfg;
}

TEST(FaultWorld, CrashWavesDriveSuspicionAndReoffer) {
  World w(crash_world());
  w.run();
  ASSERT_NE(w.fault_plan(), nullptr);
  EXPECT_GT(w.fault_plan()->node_crashes(), 0u);
  EXPECT_GT(w.fault_plan()->node_restarts(), 0u);
  const auto* detector = w.system().gossip_service().detector();
  ASSERT_NE(detector, nullptr);
  // Crashed/silent executors stop answering SYNCs: suspicion, then death
  // declarations; survivors refute theirs on the next successful exchange.
  EXPECT_GT(detector->suspicions(), 0u);
  EXPECT_GT(detector->declared_dead(), 0u);
  EXPECT_GT(detector->refutations(), 0u);
  // Tasks sitting on dead-believed executors were pulled back and re-offered.
  EXPECT_GT(w.system().tasks_reoffered(), 0u);
  EXPECT_GT(w.system().finished_workflows(), 0u);
}

TEST(FaultWorld, CrashWavesAreDeterministic) {
  EXPECT_EQ(digest_of(crash_world()), digest_of(crash_world()));
}

}  // namespace
}  // namespace dpjit::exp
