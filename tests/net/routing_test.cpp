#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dpjit::net {
namespace {

// A small fixed topology:
//   0 --(bw 10, lat 1)-- 1 --(bw 2, lat 1)-- 2
//   0 --------(bw 5, lat 5)---------------- 2
Topology triangle() {
  return Topology::from_links(3, {{NodeId{0}, NodeId{1}, 10.0, 1.0},
                                  {NodeId{1}, NodeId{2}, 2.0, 1.0},
                                  {NodeId{0}, NodeId{2}, 5.0, 5.0}});
}

TEST(Routing, SelfIsFree) {
  const auto topo = triangle();
  Routing r(topo);
  EXPECT_DOUBLE_EQ(r.latency_s(NodeId{1}, NodeId{1}), 0.0);
  EXPECT_TRUE(std::isinf(r.bandwidth_mbps(NodeId{1}, NodeId{1})));
  EXPECT_DOUBLE_EQ(r.transfer_time_s(NodeId{1}, NodeId{1}, 1000.0), 0.0);
  EXPECT_EQ(r.hops(NodeId{1}, NodeId{1}), 0);
}

TEST(Routing, ShortestLatencyPathChosen) {
  const auto topo = triangle();
  Routing r(topo);
  // 0->2 via 1 has latency 2 < 5 direct; bottleneck bw = min(10,2) = 2.
  EXPECT_DOUBLE_EQ(r.latency_s(NodeId{0}, NodeId{2}), 2.0);
  EXPECT_DOUBLE_EQ(r.bandwidth_mbps(NodeId{0}, NodeId{2}), 2.0);
  EXPECT_EQ(r.hops(NodeId{0}, NodeId{2}), 2);
}

TEST(Routing, TransferTimeCombinesLatencyAndBandwidth) {
  const auto topo = triangle();
  Routing r(topo);
  // 100 Mb over bw 2 = 50 s + 2 s latency.
  EXPECT_DOUBLE_EQ(r.transfer_time_s(NodeId{0}, NodeId{2}, 100.0), 52.0);
}

TEST(Routing, SymmetricOnUndirectedGraph) {
  const auto topo = triangle();
  Routing r(topo);
  for (int u = 0; u < 3; ++u) {
    for (int v = 0; v < 3; ++v) {
      EXPECT_DOUBLE_EQ(r.latency_s(NodeId{u}, NodeId{v}), r.latency_s(NodeId{v}, NodeId{u}));
      EXPECT_DOUBLE_EQ(r.bandwidth_mbps(NodeId{u}, NodeId{v}),
                       r.bandwidth_mbps(NodeId{v}, NodeId{u}));
    }
  }
}

TEST(Routing, PathLinksReconstruct) {
  const auto topo = triangle();
  Routing r(topo);
  const auto path = r.path_links(NodeId{0}, NodeId{2});
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].get(), 0);  // 0-1
  EXPECT_EQ(path[1].get(), 1);  // 1-2
  EXPECT_TRUE(r.path_links(NodeId{0}, NodeId{0}).empty());
}

TEST(Routing, UnreachableIsInfinite) {
  const auto topo = Topology::from_links(3, {{NodeId{0}, NodeId{1}, 1.0, 1.0}});
  Routing r(topo);
  EXPECT_TRUE(std::isinf(r.latency_s(NodeId{0}, NodeId{2})));
  EXPECT_DOUBLE_EQ(r.bandwidth_mbps(NodeId{0}, NodeId{2}), 0.0);
  EXPECT_TRUE(std::isinf(r.transfer_time_s(NodeId{0}, NodeId{2}, 1.0)));
  EXPECT_TRUE(r.path_links(NodeId{0}, NodeId{2}).empty());
}

// Cross-check Dijkstra against brute-force Floyd-Warshall on random graphs.
class RoutingProperty : public ::testing::TestWithParam<int> {};

TEST_P(RoutingProperty, MatchesFloydWarshall) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 997);
  TopologyParams params;
  params.node_count = 24;
  const auto topo = Topology::generate_waxman(params, rng);
  Routing r(topo);

  const int n = topo.node_count();
  std::vector<std::vector<double>> dist(static_cast<std::size_t>(n),
                                        std::vector<double>(static_cast<std::size_t>(n), kInf));
  for (int i = 0; i < n; ++i) dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0;
  for (const auto& link : topo.links()) {
    auto a = static_cast<std::size_t>(link.a.get());
    auto b = static_cast<std::size_t>(link.b.get());
    dist[a][b] = std::min(dist[a][b], link.latency_s);
    dist[b][a] = std::min(dist[b][a], link.latency_s);
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        auto ik = dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
        auto kj = dist[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
        auto& ij = dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        ij = std::min(ij, ik + kj);
      }
    }
  }
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      EXPECT_NEAR(r.latency_s(NodeId{u}, NodeId{v}),
                  dist[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)], 1e-4);
    }
  }
}

TEST_P(RoutingProperty, BottleneckMatchesPathLinks) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  TopologyParams params;
  params.node_count = 30;
  const auto topo = Topology::generate_waxman(params, rng);
  Routing r(topo);
  for (int u = 0; u < topo.node_count(); u += 5) {
    for (int v = 0; v < topo.node_count(); v += 3) {
      if (u == v) continue;
      const auto links = r.path_links(NodeId{u}, NodeId{v});
      ASSERT_FALSE(links.empty());
      double bottleneck = kInf;
      double latency = 0.0;
      for (LinkId l : links) {
        bottleneck = std::min(bottleneck, topo.link(l).bandwidth_mbps);
        latency += topo.link(l).latency_s;
      }
      EXPECT_NEAR(r.bandwidth_mbps(NodeId{u}, NodeId{v}), bottleneck, 1e-4);
      EXPECT_NEAR(r.latency_s(NodeId{u}, NodeId{v}), latency, 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperty, ::testing::Range(1, 9));

TEST(Routing, MeanPairBandwidthPositive) {
  util::Rng rng(3);
  TopologyParams params;
  params.node_count = 40;
  const auto topo = Topology::generate_waxman(params, rng);
  Routing r(topo);
  const double mean = r.initial_mean_pair_bandwidth_mbps();
  EXPECT_GT(mean, params.min_bandwidth_mbps);
  EXPECT_LT(mean, params.max_bandwidth_mbps);
}

}  // namespace
}  // namespace dpjit::net
