#include "net/landmark.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dpjit::net {
namespace {

Topology line4() {
  // 0 --10-- 1 --1-- 2 --8-- 3 (bandwidths; unit latencies)
  return Topology::from_links(4, {{NodeId{0}, NodeId{1}, 10.0, 1.0},
                                  {NodeId{1}, NodeId{2}, 1.0, 1.0},
                                  {NodeId{2}, NodeId{3}, 8.0, 1.0}});
}

TEST(Landmark, VectorsHaveOneEntryPerLandmark) {
  const auto topo = line4();
  Routing r(topo);
  util::Rng rng(1);
  LandmarkEstimator est(r, 2, rng);
  EXPECT_EQ(est.landmarks().size(), 2u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(est.vector_of(NodeId{i}).size(), 2u);
}

TEST(Landmark, CountClampedToNodeCount) {
  const auto topo = line4();
  Routing r(topo);
  util::Rng rng(1);
  LandmarkEstimator est(r, 100, rng);
  EXPECT_EQ(est.landmarks().size(), 4u);
}

TEST(Landmark, RejectsZeroLandmarks) {
  const auto topo = line4();
  Routing r(topo);
  util::Rng rng(1);
  EXPECT_THROW(LandmarkEstimator(r, 0, rng), std::invalid_argument);
}

TEST(Landmark, EstimateNeverExceedsRelayBottleneck) {
  const auto topo = line4();
  Routing r(topo);
  util::Rng rng(2);
  LandmarkEstimator est(r, 4, rng);  // all nodes are landmarks
  // With all nodes as landmarks, estimate(u,v) >= true bottleneck via the
  // best relay, and for u,v adjacent to the same landmark it is exact enough;
  // here 0->3 true bottleneck is 1.0 (the middle link).
  const double e = est.estimate_mbps(NodeId{0}, NodeId{3});
  EXPECT_GE(e, 1.0);
  EXPECT_LE(e, 10.0);
}

TEST(Landmark, SelfEstimateIsInfinite) {
  const auto topo = line4();
  Routing r(topo);
  util::Rng rng(2);
  LandmarkEstimator est(r, 2, rng);
  EXPECT_TRUE(std::isinf(est.estimate_mbps(NodeId{1}, NodeId{1})));
}

TEST(Landmark, FallbackWhenDisconnected) {
  const auto topo = Topology::from_links(3, {{NodeId{0}, NodeId{1}, 5.0, 1.0}});
  Routing r(topo);
  util::Rng rng(3);
  LandmarkEstimator est(r, 1, rng);
  // Node 2 is unreachable: any estimate involving it should fall back.
  const double e = est.estimate_mbps(NodeId{0}, NodeId{2}, 1.25);
  EXPECT_TRUE(e == 1.25 || e > 0.0);
}

TEST(Landmark, LocalMeanReflectsAttachment) {
  const auto topo = line4();
  Routing r(topo);
  util::Rng rng(4);
  LandmarkEstimator est(r, 4, rng);
  // Node 1's route bandwidths: to 0 = 10, to 2 = 1, to 3 = 1 -> mean 4.
  EXPECT_NEAR(est.local_mean_mbps(NodeId{1}), 4.0, 1e-9);
}

TEST(Landmark, DeterministicSelection) {
  const auto topo = line4();
  Routing r(topo);
  util::Rng r1(5), r2(5);
  LandmarkEstimator a(r, 2, r1), b(r, 2, r2);
  EXPECT_EQ(a.landmarks(), b.landmarks());
}

}  // namespace
}  // namespace dpjit::net
