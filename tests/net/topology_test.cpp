#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace dpjit::net {
namespace {

class WaxmanProperty : public ::testing::TestWithParam<int> {};

TEST_P(WaxmanProperty, ConnectedWithBoundedDegreesAndWeights) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  TopologyParams params;
  params.node_count = 50 + GetParam() * 13;
  const auto topo = Topology::generate_waxman(params, rng);

  EXPECT_EQ(topo.node_count(), params.node_count);
  EXPECT_TRUE(topo.connected());
  // Incremental growth: (n-1) nodes x up to links_per_node links.
  EXPECT_LE(topo.link_count(),
            static_cast<std::size_t>(params.node_count - 1) *
                static_cast<std::size_t>(params.links_per_node));
  EXPECT_GE(topo.link_count(), static_cast<std::size_t>(params.node_count - 1));

  for (const auto& link : topo.links()) {
    EXPECT_GE(link.bandwidth_mbps, params.min_bandwidth_mbps);
    EXPECT_LE(link.bandwidth_mbps, params.max_bandwidth_mbps);
    EXPECT_GE(link.latency_s, 0.0);
    EXPECT_NE(link.a, link.b);
  }
  for (int i = 0; i < topo.node_count(); ++i) {
    const auto& p = topo.position(NodeId{i});
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, params.plane_size);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, params.plane_size);
    EXPECT_FALSE(topo.incident(NodeId{i}).empty()) << "isolated node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaxmanProperty, ::testing::Range(1, 13));

TEST(Topology, DeterministicForSeed) {
  TopologyParams params;
  params.node_count = 80;
  util::Rng r1(5), r2(5);
  const auto a = Topology::generate_waxman(params, r1);
  const auto b = Topology::generate_waxman(params, r2);
  ASSERT_EQ(a.link_count(), b.link_count());
  for (std::size_t i = 0; i < a.link_count(); ++i) {
    const auto& la = a.link(LinkId{static_cast<LinkId::underlying_type>(i)});
    const auto& lb = b.link(LinkId{static_cast<LinkId::underlying_type>(i)});
    EXPECT_EQ(la.a, lb.a);
    EXPECT_EQ(la.b, lb.b);
    EXPECT_DOUBLE_EQ(la.bandwidth_mbps, lb.bandwidth_mbps);
  }
}

TEST(Topology, SingleNode) {
  TopologyParams params;
  params.node_count = 1;
  util::Rng rng(1);
  const auto topo = Topology::generate_waxman(params, rng);
  EXPECT_EQ(topo.link_count(), 0u);
  EXPECT_TRUE(topo.connected());
}

TEST(Topology, FromLinksAndOtherEnd) {
  std::vector<Link> links{{NodeId{0}, NodeId{1}, 5.0, 0.01}, {NodeId{1}, NodeId{2}, 2.0, 0.02}};
  const auto topo = Topology::from_links(3, links);
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.other_end(LinkId{0}, NodeId{0}), NodeId{1});
  EXPECT_EQ(topo.other_end(LinkId{0}, NodeId{1}), NodeId{0});
}

TEST(Topology, FromLinksValidates) {
  EXPECT_THROW(Topology::from_links(2, {{NodeId{0}, NodeId{5}, 1.0, 0.0}}), std::out_of_range);
  EXPECT_THROW(Topology::from_links(2, {{NodeId{0}, NodeId{1}, -1.0, 0.0}}),
               std::invalid_argument);
  // Zero capacity is a legal dead/saturated link (the fair-sharing model
  // assigns rate 0 across it; the bottleneck model treats it as unreachable).
  EXPECT_NO_THROW(Topology::from_links(2, {{NodeId{0}, NodeId{1}, 0.0, 0.0}}));
}

TEST(Topology, DisconnectedDetected) {
  const auto topo = Topology::from_links(3, {{NodeId{0}, NodeId{1}, 1.0, 0.0}});
  EXPECT_FALSE(topo.connected());
}

TEST(Topology, ParamValidation) {
  util::Rng rng(1);
  TopologyParams p;
  p.node_count = 0;
  EXPECT_THROW(Topology::generate_waxman(p, rng), std::invalid_argument);
  p = TopologyParams{};
  p.alpha = 0.0;
  EXPECT_THROW(Topology::generate_waxman(p, rng), std::invalid_argument);
  p = TopologyParams{};
  p.min_bandwidth_mbps = 5.0;
  p.max_bandwidth_mbps = 1.0;
  EXPECT_THROW(Topology::generate_waxman(p, rng), std::invalid_argument);
}

TEST(Distance, Euclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

}  // namespace
}  // namespace dpjit::net
