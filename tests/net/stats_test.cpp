#include "net/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dpjit::net {
namespace {

TEST(TopologyStats, LineGraph) {
  const auto topo = Topology::from_links(4, {{NodeId{0}, NodeId{1}, 5.0, 1.0},
                                             {NodeId{1}, NodeId{2}, 5.0, 1.0},
                                             {NodeId{2}, NodeId{3}, 5.0, 1.0}});
  const Routing routing(topo);
  const auto s = topology_stats(topo, routing);
  EXPECT_EQ(s.nodes, 4);
  EXPECT_EQ(s.links, 3u);
  EXPECT_TRUE(s.connected);
  EXPECT_EQ(s.min_degree, 1);
  EXPECT_EQ(s.max_degree, 2);
  EXPECT_DOUBLE_EQ(s.mean_degree, 1.5);
  EXPECT_EQ(s.hop_diameter, 3);
  EXPECT_DOUBLE_EQ(s.max_latency_s, 3.0);
  EXPECT_DOUBLE_EQ(s.mean_bandwidth_mbps, 5.0);
  // Pair latencies: 1,2,3,1,2,1 -> mean 10/6.
  EXPECT_NEAR(s.mean_latency_s, 10.0 / 6.0, 1e-12);
}

TEST(TopologyStats, DisconnectedFlagged) {
  const auto topo = Topology::from_links(3, {{NodeId{0}, NodeId{1}, 1.0, 1.0}});
  const Routing routing(topo);
  const auto s = topology_stats(topo, routing);
  EXPECT_FALSE(s.connected);
  EXPECT_EQ(s.hop_diameter, 1);  // only reachable pairs counted
}

TEST(TopologyStats, WaxmanLooksReasonable) {
  util::Rng rng(5);
  TopologyParams params;
  params.node_count = 60;
  const auto topo = Topology::generate_waxman(params, rng);
  const Routing routing(topo);
  const auto s = topology_stats(topo, routing);
  EXPECT_TRUE(s.connected);
  EXPECT_GE(s.mean_degree, 1.9);  // ~2 links per node in incremental growth
  EXPECT_LE(s.mean_degree, 4.1);
  EXPECT_GT(s.hop_diameter, 2);
  EXPECT_GE(s.mean_bandwidth_mbps, params.min_bandwidth_mbps);
  EXPECT_LE(s.mean_bandwidth_mbps, params.max_bandwidth_mbps);
}

TEST(TopologyStats, PrintIncludesKeyNumbers) {
  const auto topo = Topology::from_links(2, {{NodeId{0}, NodeId{1}, 2.5, 1.0}});
  const Routing routing(topo);
  std::ostringstream os;
  print_topology_stats(os, topology_stats(topo, routing));
  EXPECT_NE(os.str().find("2 nodes"), std::string::npos);
  EXPECT_NE(os.str().find("connected"), std::string::npos);
  EXPECT_NE(os.str().find("2.5"), std::string::npos);
}

}  // namespace
}  // namespace dpjit::net
