// FairShareSolver: the incremental component-scoped max-min engine must stay
// bit-identical to a from-scratch solve through arbitrary add/remove/batch
// histories, and must not touch flows outside the affected component.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <set>

#include "net/flow_sharing.hpp"

namespace dpjit::net {
namespace {

/// Asserts every flow's incremental rate equals a from-scratch solve of the
/// current flow set, bit for bit.
void expect_matches_full_solve(const FairShareSolver& solver) {
  for (const auto& [id, rate] : solver.full_solve()) {
    EXPECT_EQ(solver.rate(id), rate) << "flow " << id << ": incremental diverged from full solve";
  }
}

TEST(FairShareSolver, SingleFlowThenSharing) {
  FairShareSolver s({10.0});
  s.add(1, {LinkId{0}});
  EXPECT_DOUBLE_EQ(s.rate(1), 10.0);
  s.add(2, {LinkId{0}});
  EXPECT_DOUBLE_EQ(s.rate(1), 5.0);
  EXPECT_DOUBLE_EQ(s.rate(2), 5.0);
  s.remove(1);
  EXPECT_DOUBLE_EQ(s.rate(2), 10.0);
  EXPECT_EQ(s.flow_count(), 1u);
}

TEST(FairShareSolver, ClassicThreeFlowExample) {
  FairShareSolver s({10.0, 4.0});
  s.add(7, {LinkId{0}});
  s.add(8, {LinkId{0}, LinkId{1}});
  s.add(9, {LinkId{1}});
  EXPECT_DOUBLE_EQ(s.rate(8), 2.0);
  EXPECT_DOUBLE_EQ(s.rate(9), 2.0);
  EXPECT_DOUBLE_EQ(s.rate(7), 8.0);
  expect_matches_full_solve(s);
}

TEST(FairShareSolver, LoopbackFlowIsUnlimitedAndInert) {
  FairShareSolver s({6.0});
  s.add(1, {LinkId{0}});
  s.add(2, {});
  EXPECT_TRUE(std::isinf(s.rate(2)));
  EXPECT_DOUBLE_EQ(s.rate(1), 6.0);  // untouched by the loopback flow
  ASSERT_EQ(s.updated().size(), 1u);
  EXPECT_EQ(s.updated()[0].id, 2u);
  s.remove(2);
  EXPECT_DOUBLE_EQ(s.rate(1), 6.0);
}

TEST(FairShareSolver, DisjointComponentsAreNotResolved) {
  FairShareSolver s({4.0, 8.0});
  s.add(1, {LinkId{0}});
  s.add(2, {LinkId{0}});
  // Adding a flow on the other link must only re-solve its own component.
  s.add(3, {LinkId{1}});
  ASSERT_EQ(s.updated().size(), 1u);
  EXPECT_EQ(s.updated()[0].id, 3u);
  EXPECT_DOUBLE_EQ(s.updated()[0].rate, 8.0);
  EXPECT_DOUBLE_EQ(s.rate(1), 2.0);
  EXPECT_DOUBLE_EQ(s.rate(2), 2.0);
  // Removing it likewise leaves the link-0 component alone.
  s.remove(3);
  EXPECT_TRUE(s.updated().empty());
  expect_matches_full_solve(s);
}

TEST(FairShareSolver, BridgingFlowMergesComponents) {
  FairShareSolver s({4.0, 8.0});
  s.add(1, {LinkId{0}});
  s.add(2, {LinkId{1}});
  s.add(3, {LinkId{0}, LinkId{1}});
  // All three flows now share one component and were all re-solved.
  std::set<std::uint64_t> touched;
  for (const auto& u : s.updated()) touched.insert(u.id);
  EXPECT_EQ(touched, (std::set<std::uint64_t>{1, 2, 3}));
  expect_matches_full_solve(s);
}

TEST(FairShareSolver, ZeroCapacityLinkYieldsZeroRate) {
  FairShareSolver s({0.0, 5.0});
  s.add(1, {LinkId{0}, LinkId{1}});
  s.add(2, {LinkId{1}});
  EXPECT_DOUBLE_EQ(s.rate(1), 0.0);
  EXPECT_DOUBLE_EQ(s.rate(2), 5.0);
  expect_matches_full_solve(s);
  s.remove(1);
  EXPECT_DOUBLE_EQ(s.rate(2), 5.0);
}

TEST(FairShareSolver, DuplicateLinkCrossingsSurviveChurn) {
  FairShareSolver s({9.0});
  s.add(1, {LinkId{0}, LinkId{0}});
  s.add(2, {LinkId{0}});
  EXPECT_DOUBLE_EQ(s.rate(1), 3.0);
  EXPECT_DOUBLE_EQ(s.rate(2), 3.0);
  // Swap-erase unlinking must survive a flow occupying two slots of one link.
  s.remove(1);
  EXPECT_DOUBLE_EQ(s.rate(2), 9.0);
  expect_matches_full_solve(s);
}

TEST(FairShareSolver, BatchRemovalMatchesSequentialRemoval) {
  const std::vector<double> caps{3.0, 7.0, 2.0, 11.0};
  FairShareSolver batch(caps);
  FairShareSolver seq(caps);
  for (std::uint64_t id = 1; id <= 8; ++id) {
    std::vector<LinkId> links{LinkId{static_cast<LinkId::underlying_type>(id % 4)}};
    if (id % 3 == 0) links.push_back(LinkId{static_cast<LinkId::underlying_type>((id + 1) % 4)});
    batch.add(id, links);
    seq.add(id, links);
  }
  const std::vector<std::uint64_t> doomed{2, 3, 5, 8};
  batch.remove_batch(doomed);
  for (std::uint64_t id : doomed) seq.remove(id);
  for (std::uint64_t id : {1, 4, 6, 7}) {
    EXPECT_EQ(batch.rate(id), seq.rate(id));
  }
  expect_matches_full_solve(batch);
}

TEST(FairShareSolver, RandomizedDifferentialAgainstFullSolve) {
  // Drive the solver through random add/remove/remove_batch histories over a
  // shared link pool and check bit-identity with a from-scratch solve after
  // every mutation - the property the golden digests of the contention
  // scenarios rely on.
  std::mt19937_64 gen(0xfa1f);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n_links = 2 + round % 5;
    std::vector<double> caps;
    std::uniform_real_distribution<double> cap(0.5, 16.0);
    for (std::size_t l = 0; l < n_links; ++l) caps.push_back(cap(gen));
    FairShareSolver solver(caps);
    std::vector<std::uint64_t> live;
    std::uint64_t next_id = 1;
    std::uniform_int_distribution<int> op_pick(0, 9);
    for (int op = 0; op < 120; ++op) {
      const int what = op_pick(gen);
      if (live.empty() || what < 5) {
        // add
        std::vector<LinkId> links;
        std::uniform_int_distribution<std::size_t> len(0, std::min<std::size_t>(3, n_links));
        std::uniform_int_distribution<std::size_t> pick(0, n_links - 1);
        const std::size_t want = len(gen);
        for (std::size_t k = 0; k < want; ++k) {
          links.push_back(LinkId{static_cast<LinkId::underlying_type>(pick(gen))});
        }
        solver.add(next_id, std::move(links));
        live.push_back(next_id);
        ++next_id;
      } else if (what < 8) {
        // remove one
        std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
        const std::size_t at = pick(gen);
        solver.remove(live[at]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
      } else {
        // batch-remove a random subset (mass teardown)
        std::vector<std::uint64_t> doomed;
        std::vector<std::uint64_t> kept;
        std::bernoulli_distribution take(0.4);
        for (std::uint64_t id : live) (take(gen) ? doomed : kept).push_back(id);
        solver.remove_batch(doomed);
        live = std::move(kept);
      }
      ASSERT_EQ(solver.flow_count(), live.size());
      expect_matches_full_solve(solver);
      // updated() must cover every flow whose rate differs from before - spot
      // check: rates of flows outside updated() equal the full solve too
      // (covered by expect_matches_full_solve above).
    }
  }
}

/// FNV-1a over everything observable about the solver: flow membership,
/// per-flow rates (bit patterns) and the full_solve() cross-check. Any state
/// mutation a probe leaked would either show up here directly or desync a
/// later incremental solve from the reference (caught by the differential
/// checks that run after every mutation below).
std::uint64_t solver_state_digest(const FairShareSolver& solver,
                                  const std::vector<std::uint64_t>& live) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  auto sorted = live;
  std::sort(sorted.begin(), sorted.end());
  mix(solver.flow_count());
  for (const std::uint64_t id : sorted) {
    mix(id);
    mix(std::bit_cast<std::uint64_t>(solver.rate(id)));
  }
  return h;
}

TEST(FairShareSolver, ProbeIsSideEffectFreeUnderRandomizedChurn) {
  // The ISSUE-5 oracle property: 10k+ what-if probes interleaved with a
  // randomized add/remove churn history must leave the solver state digest
  // bit-identical, and every subsequent incremental solve must still match
  // the from-scratch reference.
  std::mt19937_64 gen(0x9a0be);
  const std::size_t n_links = 6;
  std::vector<double> caps;
  std::uniform_real_distribution<double> cap(0.5, 16.0);
  for (std::size_t l = 0; l < n_links; ++l) caps.push_back(cap(gen));
  FairShareSolver solver(caps);
  std::vector<std::uint64_t> live;
  std::uint64_t next_id = 1;
  std::uniform_int_distribution<int> op_pick(0, 9);
  std::uniform_int_distribution<std::size_t> len(0, 4);
  std::uniform_int_distribution<std::size_t> pick(0, n_links - 1);
  auto random_links = [&] {
    std::vector<LinkId> links;
    const std::size_t want = len(gen);
    for (std::size_t k = 0; k < want; ++k) {
      links.push_back(LinkId{static_cast<LinkId::underlying_type>(pick(gen))});
    }
    return links;
  };

  int probes = 0;
  for (int op = 0; op < 120; ++op) {
    if (live.empty() || op_pick(gen) < 6) {
      solver.add(next_id, random_links());
      live.push_back(next_id++);
    } else {
      std::uniform_int_distribution<std::size_t> at(0, live.size() - 1);
      const std::size_t k = at(gen);
      solver.remove(live[k]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    }
    const std::uint64_t before = solver_state_digest(solver, live);
    for (int p = 0; p < 100; ++p, ++probes) {
      (void)solver.probe_rate(random_links());
    }
    ASSERT_EQ(solver_state_digest(solver, live), before)
        << "probe mutated solver state after op " << op;
    expect_matches_full_solve(solver);
  }
  EXPECT_GE(probes, 10000);
}

TEST(FairShareSolver, ProbeMatchesSubsequentAddBitExact) {
  // probe_rate must predict exactly the rate add() then assigns - same
  // component collection, same round-synchronous arithmetic.
  std::mt19937_64 gen(0x50be);
  for (int round = 0; round < 10; ++round) {
    const std::size_t n_links = 3 + round % 4;
    std::vector<double> caps;
    std::uniform_real_distribution<double> cap(0.5, 16.0);
    for (std::size_t l = 0; l < n_links; ++l) caps.push_back(cap(gen));
    FairShareSolver solver(caps);
    std::uint64_t next_id = 1;
    std::uniform_int_distribution<std::size_t> len(0, 3);
    std::uniform_int_distribution<std::size_t> pick(0, n_links - 1);
    for (int op = 0; op < 60; ++op) {
      std::vector<LinkId> links;
      const std::size_t want = len(gen);
      for (std::size_t k = 0; k < want; ++k) {
        links.push_back(LinkId{static_cast<LinkId::underlying_type>(pick(gen))});
      }
      const double predicted = solver.probe_rate(links);
      solver.add(next_id, links);
      const double actual = solver.rate(next_id);
      if (std::isinf(predicted)) {
        EXPECT_TRUE(std::isinf(actual));
      } else {
        EXPECT_EQ(predicted, actual) << "round " << round << " op " << op;
      }
      ++next_id;
    }
  }
}

TEST(FairShareSolver, ProbeEdgeCases) {
  FairShareSolver s({10.0, 0.0, 4.0});
  EXPECT_TRUE(std::isinf(s.probe_rate({})));                      // loopback
  EXPECT_DOUBLE_EQ(s.probe_rate({LinkId{1}}), 0.0);               // dead link
  EXPECT_DOUBLE_EQ(s.probe_rate({LinkId{0}}), 10.0);              // idle link
  EXPECT_DOUBLE_EQ(s.probe_rate({LinkId{0}, LinkId{2}}), 4.0);    // min cap
  s.add(1, {LinkId{0}});
  EXPECT_DOUBLE_EQ(s.probe_rate({LinkId{0}}), 5.0);  // would share with flow 1
  EXPECT_DOUBLE_EQ(s.rate(1), 10.0);                 // ... which keeps its rate
}

TEST(FairShareSolver, ManyDisjointComponentsStayIndependent) {
  // 64 disjoint single-flow components; each mutation re-solves exactly one.
  std::vector<double> caps(64, 10.0);
  FairShareSolver s(caps);
  for (std::uint64_t id = 0; id < 64; ++id) {
    s.add(id + 1, {LinkId{static_cast<LinkId::underlying_type>(id)}});
    EXPECT_EQ(s.updated().size(), 1u);
  }
  for (std::uint64_t id = 0; id < 64; ++id) {
    s.add(100 + id, {LinkId{static_cast<LinkId::underlying_type>(id)}});
    ASSERT_EQ(s.updated().size(), 2u);
    EXPECT_DOUBLE_EQ(s.rate(id + 1), 5.0);
  }
  expect_matches_full_solve(s);
}

TEST(FairShareSolver, MutationStampMovesOnMutationsOnly) {
  // The probe-cache invalidation contract: every observable mutation bumps
  // the stamp; probes - however many - never do.
  const std::vector<double> caps = {10.0, 10.0};
  FairShareSolver s(caps);
  EXPECT_EQ(s.mutation_stamp(), 0u);
  s.add(1, {LinkId{0}, LinkId{1}});
  const std::uint64_t after_add = s.mutation_stamp();
  EXPECT_GT(after_add, 0u);
  for (int i = 0; i < 100; ++i) {
    (void)s.probe_rate({LinkId{0}});
    (void)s.probe_rate({LinkId{0}, LinkId{1}});
    (void)s.probe_rate({});
  }
  EXPECT_EQ(s.mutation_stamp(), after_add);
  s.add(2, {LinkId{0}});
  EXPECT_GT(s.mutation_stamp(), after_add);
  const std::uint64_t after_second = s.mutation_stamp();
  s.remove(2);
  EXPECT_GT(s.mutation_stamp(), after_second);
  const std::uint64_t after_remove = s.mutation_stamp();
  s.add(3, {LinkId{1}});
  s.remove_batch({1, 3});
  EXPECT_GT(s.mutation_stamp(), after_remove + 1);  // add + batch both bumped
}

TEST(FairShareSolver, ProbeReplayMatchesReferenceUnderRandomizedChurn) {
  // The fast probe path answers from a recorded per-component fill schedule
  // (amortized across all probes between two mutations); probe_rate_reference
  // re-runs the progressive fill from scratch every call. The two must be bit
  // -identical for every probe - this is what lets the replay answer stand in
  // for the legacy loop without moving a single golden digest. Paths with
  // repeated links and probes spanning disjoint islands (which take the
  // reference fallback internally) are part of the mix on purpose.
  std::mt19937_64 gen(0x5eed8);
  for (const std::size_t n_links : {4UL, 9UL, 16UL}) {
    std::vector<double> caps;
    std::uniform_real_distribution<double> cap(0.5, 16.0);
    for (std::size_t l = 0; l < n_links; ++l) caps.push_back(cap(gen));
    FairShareSolver solver(caps);
    std::vector<std::uint64_t> live;
    std::uint64_t next_id = 1;
    std::uniform_int_distribution<int> op_pick(0, 9);
    std::uniform_int_distribution<std::size_t> len(0, 5);
    // Flows live on the lower half of the pool so probes over the full pool
    // regularly cross island boundaries and idle links.
    std::uniform_int_distribution<std::size_t> flow_pick(0, n_links / 2);
    std::uniform_int_distribution<std::size_t> probe_pick(0, n_links - 1);
    auto random_links = [&](auto& dist) {
      std::vector<LinkId> links;
      const std::size_t want = len(gen);
      for (std::size_t k = 0; k < want; ++k) {
        links.push_back(LinkId{static_cast<LinkId::underlying_type>(dist(gen))});
      }
      return links;  // duplicates allowed: repeated crossings are legal paths
    };
    for (int op = 0; op < 150; ++op) {
      if (live.empty() || op_pick(gen) < 6) {
        solver.add(next_id, random_links(flow_pick));
        live.push_back(next_id++);
      } else {
        std::uniform_int_distribution<std::size_t> at(0, live.size() - 1);
        const std::size_t k = at(gen);
        solver.remove(live[k]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      }
      for (int p = 0; p < 40; ++p) {
        const std::vector<LinkId> path = random_links(probe_pick);
        const double fast = solver.probe_rate(path);
        const double ref = solver.probe_rate_reference(path);
        ASSERT_EQ(fast, ref) << "probe diverged from reference at op " << op;
      }
    }
  }
}

TEST(FairShareSolver, ProbeReplayMatchesReferenceOnLargeComponent) {
  // A single component wide enough (> 2x the near-set size) that the solver's
  // near/far share-scan partition engages: the recorded schedules and their
  // replays must still match the reference fill exactly, round for round.
  std::mt19937_64 gen(0xb16c0);
  const std::size_t n_links = 220;
  std::vector<double> caps;
  std::uniform_real_distribution<double> cap(0.5, 16.0);
  for (std::size_t l = 0; l < n_links; ++l) caps.push_back(cap(gen));
  FairShareSolver solver(caps);
  std::uniform_int_distribution<std::size_t> pick(0, n_links - 1);
  // A shared backbone link glues everything into one component; two extra
  // random crossings per flow spread the contention.
  for (std::uint64_t id = 1; id <= 300; ++id) {
    std::vector<LinkId> links{LinkId{0}};
    links.push_back(LinkId{static_cast<LinkId::underlying_type>(pick(gen))});
    links.push_back(LinkId{static_cast<LinkId::underlying_type>(pick(gen))});
    solver.add(id, std::move(links));
  }
  expect_matches_full_solve(solver);
  for (int p = 0; p < 500; ++p) {
    std::vector<LinkId> path;
    const std::size_t want = 1 + p % 4;
    for (std::size_t k = 0; k < want; ++k) {
      path.push_back(LinkId{static_cast<LinkId::underlying_type>(pick(gen))});
    }
    const double fast = solver.probe_rate(path);
    const double ref = solver.probe_rate_reference(path);
    ASSERT_EQ(fast, ref) << "probe " << p << " diverged on the wide component";
  }
}

}  // namespace
}  // namespace dpjit::net
