#include "net/flow_sharing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <random>

namespace dpjit::net {
namespace {

/// Independent reference implementation for differential testing: textbook
/// progressive filling that re-derives per-link state from scratch every
/// round instead of maintaining running remainders. Deliberately written in a
/// different style from the production solver.
std::vector<double> reference_max_min(const std::vector<FlowPath>& flows,
                                      const std::vector<double>& caps) {
  const std::size_t nf = flows.size();
  std::vector<double> rate(nf, 0.0);
  std::vector<char> fixed(nf, 0);
  for (std::size_t f = 0; f < nf; ++f) {
    if (flows[f].links.empty()) {
      rate[f] = kInf;
      fixed[f] = 1;
    }
  }
  for (;;) {
    std::vector<double> rem = caps;
    std::vector<int> cnt(caps.size(), 0);
    for (std::size_t f = 0; f < nf; ++f) {
      for (LinkId l : flows[f].links) {
        const auto li = static_cast<std::size_t>(l.get());
        if (fixed[f]) {
          rem[li] -= rate[f];
        } else {
          ++cnt[li];
        }
      }
    }
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < caps.size(); ++l) {
      if (cnt[l] > 0) best = std::min(best, std::max(rem[l], 0.0) / cnt[l]);
    }
    if (!std::isfinite(best)) break;
    bool any = false;
    for (std::size_t l = 0; l < caps.size(); ++l) {
      if (cnt[l] == 0 || std::max(rem[l], 0.0) / cnt[l] > best * (1.0 + 1e-9)) continue;
      for (std::size_t f = 0; f < nf; ++f) {
        if (fixed[f]) continue;
        if (std::find(flows[f].links.begin(), flows[f].links.end(),
                      LinkId{static_cast<LinkId::underlying_type>(l)}) == flows[f].links.end()) {
          continue;
        }
        rate[f] = best;
        fixed[f] = 1;
        any = true;
      }
    }
    if (!any) break;
  }
  return rate;
}

/// Random flow-set generator shared by the property tests.
struct RandomInstance {
  std::vector<FlowPath> flows;
  std::vector<double> caps;
};

RandomInstance random_instance(std::mt19937_64& gen, std::size_t n_links, std::size_t n_flows) {
  RandomInstance inst;
  std::uniform_real_distribution<double> cap(0.5, 20.0);
  for (std::size_t l = 0; l < n_links; ++l) inst.caps.push_back(cap(gen));
  std::uniform_int_distribution<std::size_t> path_len(1, std::min<std::size_t>(4, n_links));
  std::uniform_int_distribution<std::size_t> pick(0, n_links - 1);
  for (std::size_t f = 0; f < n_flows; ++f) {
    FlowPath p;
    const std::size_t len = path_len(gen);
    for (std::size_t k = 0; k < len; ++k) {
      const LinkId l{static_cast<LinkId::underlying_type>(pick(gen))};
      if (std::find(p.links.begin(), p.links.end(), l) == p.links.end()) p.links.push_back(l);
    }
    inst.flows.push_back(std::move(p));
  }
  return inst;
}

TEST(MaxMinFair, SingleFlowGetsFullLink) {
  const auto rates = max_min_fair_rates({{{LinkId{0}}}}, {10.0});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
}

TEST(MaxMinFair, TwoFlowsShareEqually) {
  const auto rates = max_min_fair_rates({{{LinkId{0}}}, {{LinkId{0}}}}, {10.0});
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(MaxMinFair, ClassicThreeFlowExample) {
  // Links: A (cap 10) and B (cap 4). Flow0 uses A only, flow1 uses A+B,
  // flow2 uses B only. Max-min: B gives 2 each to flows 1,2; flow0 gets the
  // remaining 8 on A.
  const auto rates = max_min_fair_rates(
      {{{LinkId{0}}}, {{LinkId{0}, LinkId{1}}}, {{LinkId{1}}}}, {10.0, 4.0});
  EXPECT_DOUBLE_EQ(rates[1], 2.0);
  EXPECT_DOUBLE_EQ(rates[2], 2.0);
  EXPECT_DOUBLE_EQ(rates[0], 8.0);
}

TEST(MaxMinFair, LoopbackFlowsUnlimited) {
  const auto rates = max_min_fair_rates({{{}}, {{LinkId{0}}}}, {6.0});
  EXPECT_TRUE(std::isinf(rates[0]));
  EXPECT_DOUBLE_EQ(rates[1], 6.0);
}

TEST(MaxMinFair, NoFlows) {
  EXPECT_TRUE(max_min_fair_rates({}, {1.0}).empty());
}

TEST(MaxMinFair, CapacityConservationProperty) {
  // Random-ish scenario: total allocated on each link must not exceed its
  // capacity, and every flow gets a positive rate.
  std::vector<FlowPath> flows{
      {{LinkId{0}, LinkId{1}}}, {{LinkId{1}, LinkId{2}}}, {{LinkId{0}, LinkId{2}}},
      {{LinkId{1}}},            {{LinkId{2}}},
  };
  const std::vector<double> caps{3.0, 5.0, 2.0};
  const auto rates = max_min_fair_rates(flows, caps);
  std::vector<double> used(caps.size(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_GT(rates[f], 0.0);
    for (LinkId l : flows[f].links) used[static_cast<std::size_t>(l.get())] += rates[f];
  }
  for (std::size_t l = 0; l < caps.size(); ++l) {
    EXPECT_LE(used[l], caps[l] + 1e-9);
  }
}

TEST(MaxMinFair, BottleneckedFlowCannotBeRaised) {
  // Max-min optimality spot check: raising any flow's rate requires lowering
  // a flow with an equal-or-smaller rate on some shared saturated link.
  std::vector<FlowPath> flows{{{LinkId{0}}}, {{LinkId{0}, LinkId{1}}}, {{LinkId{1}}}};
  const std::vector<double> caps{2.0, 8.0};
  const auto rates = max_min_fair_rates(flows, caps);
  // Link 0 saturates at 1 each for flows 0,1; flow 2 then gets 7 on link 1.
  EXPECT_DOUBLE_EQ(rates[0], 1.0);
  EXPECT_DOUBLE_EQ(rates[1], 1.0);
  EXPECT_DOUBLE_EQ(rates[2], 7.0);
}

TEST(MaxMinFair, ZeroCapacityLinkGivesZeroRate) {
  // Flows crossing a dead link get 0 (the TransferManager aborts them);
  // flows avoiding it still share the live links normally.
  const auto rates = max_min_fair_rates(
      {{{LinkId{0}}}, {{LinkId{0}, LinkId{1}}}, {{LinkId{1}}}}, {0.0, 6.0});
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
  EXPECT_DOUBLE_EQ(rates[2], 6.0);
}

TEST(MaxMinFair, AllLinksZeroCapacity) {
  const auto rates = max_min_fair_rates({{{LinkId{0}}}, {{LinkId{0}}}}, {0.0});
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
}

TEST(MaxMinFair, LoopbackOnlyFlowSet) {
  const auto rates = max_min_fair_rates({{{}}, {{}}, {{}}}, {5.0});
  for (double r : rates) EXPECT_TRUE(std::isinf(r));
}

TEST(MaxMinFair, DuplicateLinkOnOnePathCountsPerCrossing) {
  // Defensive semantics: a path crossing one link twice consumes two shares
  // of it, exactly as if the crossings were distinct links of equal capacity.
  // Link 0 carries flow0 twice plus flow1 once -> 3 crossings, share 9/3 = 3;
  // both flows bottleneck there and freeze at 3 (flow0 consuming 6 in total).
  const auto dup = max_min_fair_rates({{{LinkId{0}, LinkId{0}}}, {{LinkId{0}}}}, {9.0});
  EXPECT_DOUBLE_EQ(dup[0], 3.0);
  EXPECT_DOUBLE_EQ(dup[1], 3.0);
}

TEST(MaxMinFair, PermutationInvariance) {
  // The round-synchronous freeze makes rates bit-identical under any
  // permutation of the flow vector (the TransferManager iterates its flows
  // in hash-map order, so this is load-bearing, not cosmetic).
  std::mt19937_64 gen(0x5eed);
  for (int round = 0; round < 50; ++round) {
    const auto inst = random_instance(gen, 6, 12);
    const auto base = max_min_fair_rates(inst.flows, inst.caps);
    std::vector<std::size_t> perm(inst.flows.size());
    std::iota(perm.begin(), perm.end(), 0u);
    for (int shuffle = 0; shuffle < 4; ++shuffle) {
      std::shuffle(perm.begin(), perm.end(), gen);
      std::vector<FlowPath> shuffled;
      for (std::size_t i : perm) shuffled.push_back(inst.flows[i]);
      const auto rates = max_min_fair_rates(shuffled, inst.caps);
      for (std::size_t i = 0; i < perm.size(); ++i) {
        EXPECT_EQ(rates[i], base[perm[i]]) << "round " << round << " flow " << perm[i]
                                           << ": rate depends on flow order";
      }
    }
  }
}

TEST(MaxMinFair, DifferentialAgainstReferenceSolver) {
  std::mt19937_64 gen(0xd1ff);
  for (int round = 0; round < 100; ++round) {
    const auto inst = random_instance(gen, 5, 10);
    const auto got = max_min_fair_rates(inst.flows, inst.caps);
    const auto want = reference_max_min(inst.flows, inst.caps);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t f = 0; f < got.size(); ++f) {
      if (std::isinf(want[f])) {
        EXPECT_TRUE(std::isinf(got[f]));
      } else {
        EXPECT_NEAR(got[f], want[f], 1e-9 * std::max(1.0, want[f]))
            << "round " << round << " flow " << f;
      }
    }
  }
}

TEST(MaxMinFair, MaxMinOptimalityProperty) {
  // On random instances: capacity conservation plus the max-min certificate -
  // every flow either is unconstrained (infinite) or crosses a saturated link
  // where it holds one of the maximal shares.
  std::mt19937_64 gen(0x0b7a1137);
  for (int round = 0; round < 40; ++round) {
    const auto inst = random_instance(gen, 6, 14);
    const auto rates = max_min_fair_rates(inst.flows, inst.caps);
    std::vector<double> used(inst.caps.size(), 0.0);
    for (std::size_t f = 0; f < rates.size(); ++f) {
      for (LinkId l : inst.flows[f].links) used[static_cast<std::size_t>(l.get())] += rates[f];
    }
    for (std::size_t l = 0; l < inst.caps.size(); ++l) {
      EXPECT_LE(used[l], inst.caps[l] * (1.0 + 1e-9) + 1e-12);
    }
    for (std::size_t f = 0; f < rates.size(); ++f) {
      if (inst.flows[f].links.empty()) continue;
      bool certificate = false;
      for (LinkId l : inst.flows[f].links) {
        const auto li = static_cast<std::size_t>(l.get());
        if (used[li] < inst.caps[li] * (1.0 - 1e-6)) continue;  // not saturated
        // f must hold a maximal rate on this saturated link.
        bool maximal = true;
        for (std::size_t g = 0; g < rates.size(); ++g) {
          if (g == f) continue;
          const auto& gl = inst.flows[g].links;
          if (std::find(gl.begin(), gl.end(), l) == gl.end()) continue;
          if (rates[g] > rates[f] * (1.0 + 1e-9)) maximal = false;
        }
        if (maximal) {
          certificate = true;
          break;
        }
      }
      EXPECT_TRUE(certificate) << "flow " << f << " is not max-min bottlenecked";
    }
  }
}

}  // namespace
}  // namespace dpjit::net
