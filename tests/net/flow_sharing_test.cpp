#include "net/flow_sharing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dpjit::net {
namespace {

TEST(MaxMinFair, SingleFlowGetsFullLink) {
  const auto rates = max_min_fair_rates({{{LinkId{0}}}}, {10.0});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
}

TEST(MaxMinFair, TwoFlowsShareEqually) {
  const auto rates = max_min_fair_rates({{{LinkId{0}}}, {{LinkId{0}}}}, {10.0});
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(MaxMinFair, ClassicThreeFlowExample) {
  // Links: A (cap 10) and B (cap 4). Flow0 uses A only, flow1 uses A+B,
  // flow2 uses B only. Max-min: B gives 2 each to flows 1,2; flow0 gets the
  // remaining 8 on A.
  const auto rates = max_min_fair_rates(
      {{{LinkId{0}}}, {{LinkId{0}, LinkId{1}}}, {{LinkId{1}}}}, {10.0, 4.0});
  EXPECT_DOUBLE_EQ(rates[1], 2.0);
  EXPECT_DOUBLE_EQ(rates[2], 2.0);
  EXPECT_DOUBLE_EQ(rates[0], 8.0);
}

TEST(MaxMinFair, LoopbackFlowsUnlimited) {
  const auto rates = max_min_fair_rates({{{}}, {{LinkId{0}}}}, {6.0});
  EXPECT_TRUE(std::isinf(rates[0]));
  EXPECT_DOUBLE_EQ(rates[1], 6.0);
}

TEST(MaxMinFair, NoFlows) {
  EXPECT_TRUE(max_min_fair_rates({}, {1.0}).empty());
}

TEST(MaxMinFair, CapacityConservationProperty) {
  // Random-ish scenario: total allocated on each link must not exceed its
  // capacity, and every flow gets a positive rate.
  std::vector<FlowPath> flows{
      {{LinkId{0}, LinkId{1}}}, {{LinkId{1}, LinkId{2}}}, {{LinkId{0}, LinkId{2}}},
      {{LinkId{1}}},            {{LinkId{2}}},
  };
  const std::vector<double> caps{3.0, 5.0, 2.0};
  const auto rates = max_min_fair_rates(flows, caps);
  std::vector<double> used(caps.size(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_GT(rates[f], 0.0);
    for (LinkId l : flows[f].links) used[static_cast<std::size_t>(l.get())] += rates[f];
  }
  for (std::size_t l = 0; l < caps.size(); ++l) {
    EXPECT_LE(used[l], caps[l] + 1e-9);
  }
}

TEST(MaxMinFair, BottleneckedFlowCannotBeRaised) {
  // Max-min optimality spot check: raising any flow's rate requires lowering
  // a flow with an equal-or-smaller rate on some shared saturated link.
  std::vector<FlowPath> flows{{{LinkId{0}}}, {{LinkId{0}, LinkId{1}}}, {{LinkId{1}}}};
  const std::vector<double> caps{2.0, 8.0};
  const auto rates = max_min_fair_rates(flows, caps);
  // Link 0 saturates at 1 each for flows 0,1; flow 2 then gets 7 on link 1.
  EXPECT_DOUBLE_EQ(rates[0], 1.0);
  EXPECT_DOUBLE_EQ(rates[1], 1.0);
  EXPECT_DOUBLE_EQ(rates[2], 7.0);
}

}  // namespace
}  // namespace dpjit::net
