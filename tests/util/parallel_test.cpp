#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace dpjit::util {
namespace {

TEST(Parallel, ResolveThreadsClampsToUsefulWork) {
  EXPECT_EQ(resolve_threads(8, 3), 3);
  EXPECT_EQ(resolve_threads(2, 100), 2);
  EXPECT_GE(resolve_threads(0, 100), 1);  // hardware concurrency, at least 1
  EXPECT_EQ(resolve_threads(-1, 1), 1);
}

TEST(Parallel, ForBlocksCoversRangeExactlyOnce) {
  for (int threads : {1, 3, 7}) {
    std::vector<std::atomic<int>> hits(100);
    parallel_for_blocks(hits.size(), threads, [&](std::size_t begin, std::size_t end) {
      ASSERT_LE(begin, end);
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, ForEachCoversRangeExactlyOnce) {
  for (int threads : {1, 4}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for_each(hits.size(), threads, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, EmptyRangeIsANoop) {
  parallel_for_blocks(0, 4, [](std::size_t, std::size_t) { FAIL(); });
  parallel_for_each(0, 4, [](std::size_t) { FAIL(); });
}

TEST(Parallel, WorkerExceptionIsRethrownOnCaller) {
  EXPECT_THROW(parallel_for_each(64, 4,
                                 [](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  EXPECT_THROW(parallel_for_blocks(64, 4,
                                   [](std::size_t begin, std::size_t) {
                                     if (begin == 0) throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  // Serial paths propagate too.
  EXPECT_THROW(parallel_for_each(4, 1, [](std::size_t) { throw std::logic_error("x"); }),
               std::logic_error);
}

}  // namespace
}  // namespace dpjit::util
