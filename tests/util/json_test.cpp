#include "util/json.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dpjit::util {
namespace {

TEST(JsonEscape, PassesPlainText) { EXPECT_EQ(json_escape("hello"), "hello"); }

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, FlatObject) {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_object().kv("name", "dsmf").kv("act", 123.5).kv("n", std::int64_t{42}).kv("ok", true)
      .end_object();
  EXPECT_TRUE(j.complete());
  EXPECT_EQ(os.str(), R"({"name":"dsmf","act":123.5,"n":42,"ok":true})");
}

TEST(JsonWriter, NestedArrays) {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_array();
  j.begin_array().value(1.0).value(2.0).end_array();
  j.begin_array().end_array();
  j.null();
  j.end_array();
  EXPECT_EQ(os.str(), "[[1,2],[],null]");
  EXPECT_TRUE(j.complete());
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_array().value(std::numeric_limits<double>::infinity()).end_array();
  EXPECT_EQ(os.str(), "[null]");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream os;
  {
    JsonWriter j(os);
    j.begin_object();
    EXPECT_THROW(j.value(1.0), std::logic_error);  // value without key
  }
  {
    JsonWriter j(os);
    EXPECT_THROW(j.key("x"), std::logic_error);  // key outside object
  }
  {
    JsonWriter j(os);
    j.begin_array();
    EXPECT_THROW(j.end_object(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter j(os);
    j.value(1.0);
    EXPECT_THROW(j.value(2.0), std::logic_error);  // two roots
  }
}

TEST(JsonWriter, KeysEscaped) {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_object().kv("we\"ird", "v").end_object();
  EXPECT_EQ(os.str(), R"({"we\"ird":"v"})");
}

}  // namespace
}  // namespace dpjit::util
