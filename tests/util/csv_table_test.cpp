#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/table_printer.hpp"

namespace dpjit::util {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) { EXPECT_EQ(csv_escape("hello"), "hello"); }

TEST(CsvEscape, CommaTriggersQuotes) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, QuotesDoubled) { EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\""); }

TEST(CsvEscape, NewlineQuoted) { EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\""); }

TEST(CsvWriter, WritesRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"h1", "h2"});
  csv.row({"1", "x,y"});
  EXPECT_EQ(os.str(), "h1,h2\n1,\"x,y\"\n");
}

TEST(CsvWriter, NumFormatsRoundTrip) {
  EXPECT_EQ(CsvWriter::num(static_cast<std::int64_t>(42)), "42");
  EXPECT_EQ(CsvWriter::num(2.5), "2.5");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "23"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator and two rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Numeric cells right-aligned: " 1" under a 5-wide column.
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TablePrinter, MarkdownFormat) {
  TablePrinter t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_EQ(os.str(), "| x | y |\n|---|---|\n| 1 | 2 |\n");
}

TEST(TablePrinter, FmtSignificantDigits) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 3), "3.14");
  EXPECT_EQ(TablePrinter::fmt(120000.0, 4), "1.2e+05");
}

}  // namespace
}  // namespace dpjit::util
