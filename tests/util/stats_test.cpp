#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dpjit::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Percentile, EmptyIsNaN) { EXPECT_TRUE(std::isnan(percentile({}, 0.5))); }

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Percentile, ClampsQ) {
  std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 2.0);
}

TEST(MeanOf, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_TRUE(std::isnan(mean_of({})));
}

TEST(TimeSeries, BucketsObservations) {
  TimeSeries ts(10.0, 100.0);
  EXPECT_EQ(ts.bucket_count(), 10u);
  ts.record(5.0, 2.0);
  ts.record(7.0, 4.0);
  ts.record(15.0, 6.0);
  EXPECT_EQ(ts.bucket_n(0), 2u);
  EXPECT_DOUBLE_EQ(ts.bucket_sum(0), 6.0);
  EXPECT_DOUBLE_EQ(ts.bucket_mean(0), 3.0);
  EXPECT_EQ(ts.bucket_n(1), 1u);
  EXPECT_DOUBLE_EQ(ts.bucket_mean(1), 6.0);
}

TEST(TimeSeries, EmptyBucketMeanIsNaN) {
  TimeSeries ts(10.0, 100.0);
  EXPECT_TRUE(std::isnan(ts.bucket_mean(3)));
}

TEST(TimeSeries, LateObservationsClampToLastBucket) {
  TimeSeries ts(10.0, 100.0);
  ts.record(1e9, 1.0);
  EXPECT_EQ(ts.bucket_n(ts.bucket_count() - 1), 1u);
}

TEST(TimeSeries, NegativeTimesClampToFirstBucket) {
  TimeSeries ts(10.0, 100.0);
  ts.record(-5.0, 1.0);
  EXPECT_EQ(ts.bucket_n(0), 1u);
}

TEST(TimeSeries, CumulativeAggregation) {
  TimeSeries ts(10.0, 50.0);
  ts.record(5.0, 1.0);
  ts.record(15.0, 3.0);
  ts.record(25.0, 5.0);
  EXPECT_EQ(ts.cumulative_n(2), 3u);
  EXPECT_DOUBLE_EQ(ts.cumulative_mean(2), 3.0);
  EXPECT_EQ(ts.cumulative_n(0), 1u);
  EXPECT_DOUBLE_EQ(ts.cumulative_mean(0), 1.0);
}

TEST(TimeSeries, BucketTimes) {
  TimeSeries ts(10.0, 30.0);
  EXPECT_DOUBLE_EQ(ts.bucket_time(0), 0.0);
  EXPECT_DOUBLE_EQ(ts.bucket_time(2), 20.0);
}

}  // namespace
}  // namespace dpjit::util
