#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace dpjit::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(10.0, 20.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 20.0);
  }
}

TEST(Rng, UniformIntCoversFullInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntUnbiasedish) {
  Rng rng(123);
  int counts[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(0, 9)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(77);
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("alpha");
  Rng c = parent.fork("beta");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  // A different label must produce a different stream.
  Rng a2 = parent.fork("alpha");
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a2() == c()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkWithIndexDiffers) {
  Rng parent(77);
  Rng a = parent.fork("node", 1);
  Rng b = parent.fork("node", 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIndependentOfParentConsumption) {
  Rng p1(5);
  Rng p2(5);
  p2();
  p2();  // consuming the parent must not change children
  Rng c1 = p1.fork("x");
  Rng c2 = p2.fork("x");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(31);
  auto s = rng.sample_indices(100, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<std::size_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 10u);
  for (auto i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesKGreaterThanN) {
  Rng rng(31);
  auto s = rng.sample_indices(5, 50);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, NormalMatchesMomentsAndIsDeterministic) {
  Rng rng(7);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.normal(0, 1), b.normal(0, 1));
}

TEST(Rng, LognormalIsPositiveWithHeavyRightTail) {
  Rng rng(11);
  const int n = 50000;
  int above_geo_mean = 0;
  double max_seen = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal(std::log(100.0), 1.5);
    ASSERT_GT(x, 0.0);
    if (x > 100.0) ++above_geo_mean;
    max_seen = std::max(max_seen, x);
  }
  // The median of exp(N(mu, s)) is exp(mu); the tail reaches far above it.
  EXPECT_NEAR(above_geo_mean / static_cast<double>(n), 0.5, 0.02);
  EXPECT_GT(max_seen, 100.0 * 50);
}

TEST(Rng, ParetoRespectsScaleAndTailIndex) {
  Rng rng(13);
  const int n = 50000;
  int beyond_double = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(5.0, 2.0);
    ASSERT_GE(x, 5.0);
    if (x > 10.0) ++beyond_double;
  }
  // P(X > 2*xm) = (1/2)^alpha = 1/4 for alpha = 2.
  EXPECT_NEAR(beyond_double / static_cast<double>(n), 0.25, 0.02);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  // Weibull(1, lambda) IS Exponential(lambda): P(X > lambda) = 1/e.
  Rng rng(17);
  const int n = 50000;
  int beyond_scale = 0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.weibull(1.0, 300.0);
    ASSERT_GT(x, 0.0);
    sum += x;
    if (x > 300.0) ++beyond_scale;
  }
  EXPECT_NEAR(sum / n, 300.0, 10.0);
  EXPECT_NEAR(beyond_scale / static_cast<double>(n), std::exp(-1.0), 0.01);
}

TEST(Rng, WeibullMatchesMeanAcrossShapes) {
  // E[Weibull(k, lambda)] = lambda * Gamma(1 + 1/k); shape < 1 is the bursty
  // interarrival regime the trace fitter targets, shape > 1 the regular one.
  for (double shape : {0.6, 1.5, 3.0}) {
    Rng rng(19);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.weibull(shape, 100.0);
    const double expected = 100.0 * std::exp(std::lgamma(1.0 + 1.0 / shape));
    EXPECT_NEAR(sum / n, expected, 0.03 * expected) << "shape " << shape;
  }
}

TEST(Rng, WeibullDeterministicForSameSeed) {
  Rng a(23), b(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.weibull(0.7, 50.0), b.weibull(0.7, 50.0));
  }
}

}  // namespace
}  // namespace dpjit::util
