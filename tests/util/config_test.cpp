#include "util/config.hpp"

#include <gtest/gtest.h>

namespace dpjit::util {
namespace {

Config parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Config::from_args(static_cast<int>(argv.size()), argv.data());
}

TEST(Config, ParsesKeyValueArgs) {
  auto cfg = parse({"--nodes=100", "--algorithm=dsmf"});
  EXPECT_EQ(cfg.get_int("nodes", 0), 100);
  EXPECT_EQ(cfg.get_string("algorithm", ""), "dsmf");
}

TEST(Config, FlagWithoutValueIsTrue) {
  auto cfg = parse({"--verbose"});
  EXPECT_TRUE(cfg.get_bool("verbose", false));
}

TEST(Config, PositionalArgsCollected) {
  auto cfg = parse({"first", "--k=v", "second"});
  ASSERT_EQ(cfg.positional().size(), 2u);
  EXPECT_EQ(cfg.positional()[0], "first");
  EXPECT_EQ(cfg.positional()[1], "second");
}

TEST(Config, FallbacksWhenAbsent) {
  auto cfg = parse({});
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(cfg.get_string("missing", "x"), "x");
  EXPECT_TRUE(cfg.get_bool("missing", true));
}

TEST(Config, ThrowsOnMalformedNumber) {
  auto cfg = parse({"--n=abc"});
  EXPECT_THROW((void)cfg.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)cfg.get_double("n", 0), std::invalid_argument);
}

TEST(Config, ThrowsOnMalformedBool) {
  auto cfg = parse({"--b=maybe"});
  EXPECT_THROW((void)cfg.get_bool("b", false), std::invalid_argument);
}

TEST(Config, BoolSynonyms) {
  auto cfg = parse({"--a=1", "--b=yes", "--c=off", "--d=false"});
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_FALSE(cfg.get_bool("c", true));
  EXPECT_FALSE(cfg.get_bool("d", true));
}

TEST(Config, ThrowsOnBareDashes) {
  const char* argv[] = {"prog", "--"};
  EXPECT_THROW(Config::from_args(2, argv), std::invalid_argument);
}

TEST(Config, FromStringWithCommentsAndBlanks) {
  auto cfg = Config::from_string("# comment\nnodes = 10\n\nalgo=smf # trailing\n");
  EXPECT_EQ(cfg.get_int("nodes", 0), 10);
  EXPECT_EQ(cfg.get_string("algo", ""), "smf");
}

TEST(Config, FromStringThrowsWithoutEquals) {
  EXPECT_THROW(Config::from_string("broken line\n"), std::invalid_argument);
}

TEST(Config, UnusedKeysTracked) {
  auto cfg = parse({"--used=1", "--unused=2"});
  (void)cfg.get_int("used", 0);
  const auto unused = cfg.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(Config, LaterValueOverwrites) {
  auto cfg = parse({"--k=1", "--k=2"});
  EXPECT_EQ(cfg.get_int("k", 0), 2);
}

TEST(Config, KeysSorted) {
  auto cfg = parse({"--b=1", "--a=2"});
  const auto keys = cfg.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

}  // namespace
}  // namespace dpjit::util
