int foo();

int main()
{
  return foo();
}
