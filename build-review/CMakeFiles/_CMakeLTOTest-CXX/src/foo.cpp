int foo()
{
  return 0x42;
}
