file(REMOVE_RECURSE
  "CMakeFiles/foo.dir/foo.cpp.o"
  "libfoo.a"
  "libfoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
