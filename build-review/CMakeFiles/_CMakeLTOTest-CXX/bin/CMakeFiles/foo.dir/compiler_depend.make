# Empty compiler generated dependencies file for foo.
# This may be replaced when dependencies are built.
