file(REMOVE_RECURSE
  "libfoo.a"
)
