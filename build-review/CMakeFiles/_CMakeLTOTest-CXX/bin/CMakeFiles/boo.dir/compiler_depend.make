# Empty compiler generated dependencies file for boo.
# This may be replaced when dependencies are built.
