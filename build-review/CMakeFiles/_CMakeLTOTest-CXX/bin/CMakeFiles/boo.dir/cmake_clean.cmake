file(REMOVE_RECURSE
  "CMakeFiles/boo.dir/main.cpp.o"
  "boo"
  "boo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
