
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "CXX"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_CXX
  "/root/repo/build-review/CMakeFiles/_CMakeLTOTest-CXX/src/main.cpp" "/root/repo/build-review/CMakeFiles/_CMakeLTOTest-CXX/bin/CMakeFiles/boo.dir/main.cpp.o"
  )
set(CMAKE_CXX_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_CXX_TARGET_INCLUDE_PATH
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/_CMakeLTOTest-CXX/bin/CMakeFiles/foo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
