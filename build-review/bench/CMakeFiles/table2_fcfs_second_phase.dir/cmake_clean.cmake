file(REMOVE_RECURSE
  "CMakeFiles/table2_fcfs_second_phase.dir/table2_fcfs_second_phase.cpp.o"
  "CMakeFiles/table2_fcfs_second_phase.dir/table2_fcfs_second_phase.cpp.o.d"
  "table2_fcfs_second_phase"
  "table2_fcfs_second_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fcfs_second_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
