# Empty compiler generated dependencies file for table2_fcfs_second_phase.
# This may be replaced when dependencies are built.
