file(REMOVE_RECURSE
  "CMakeFiles/micro_benchmarks.dir/micro_benchmarks.cpp.o"
  "CMakeFiles/micro_benchmarks.dir/micro_benchmarks.cpp.o.d"
  "micro_benchmarks"
  "micro_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
