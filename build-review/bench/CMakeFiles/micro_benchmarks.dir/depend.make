# Empty dependencies file for micro_benchmarks.
# This may be replaced when dependencies are built.
