file(REMOVE_RECURSE
  "CMakeFiles/fig11_scalability.dir/fig11_scalability.cpp.o"
  "CMakeFiles/fig11_scalability.dir/fig11_scalability.cpp.o.d"
  "fig11_scalability"
  "fig11_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
