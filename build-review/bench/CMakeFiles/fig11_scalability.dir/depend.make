# Empty dependencies file for fig11_scalability.
# This may be replaced when dependencies are built.
