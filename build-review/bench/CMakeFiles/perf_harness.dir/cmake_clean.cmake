file(REMOVE_RECURSE
  "CMakeFiles/perf_harness.dir/perf_harness.cpp.o"
  "CMakeFiles/perf_harness.dir/perf_harness.cpp.o.d"
  "perf_harness"
  "perf_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
