# Empty compiler generated dependencies file for perf_harness.
# This may be replaced when dependencies are built.
