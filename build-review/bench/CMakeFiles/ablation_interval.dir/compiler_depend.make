# Empty compiler generated dependencies file for ablation_interval.
# This may be replaced when dependencies are built.
