file(REMOVE_RECURSE
  "CMakeFiles/ablation_interval.dir/ablation_interval.cpp.o"
  "CMakeFiles/ablation_interval.dir/ablation_interval.cpp.o.d"
  "ablation_interval"
  "ablation_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
