file(REMOVE_RECURSE
  "CMakeFiles/ablation_network_model.dir/ablation_network_model.cpp.o"
  "CMakeFiles/ablation_network_model.dir/ablation_network_model.cpp.o.d"
  "ablation_network_model"
  "ablation_network_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_network_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
