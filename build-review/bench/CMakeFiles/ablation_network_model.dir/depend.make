# Empty dependencies file for ablation_network_model.
# This may be replaced when dependencies are built.
