# Empty compiler generated dependencies file for fig08_loadfactor_efficiency.
# This may be replaced when dependencies are built.
