file(REMOVE_RECURSE
  "CMakeFiles/fig08_loadfactor_efficiency.dir/fig08_loadfactor_efficiency.cpp.o"
  "CMakeFiles/fig08_loadfactor_efficiency.dir/fig08_loadfactor_efficiency.cpp.o.d"
  "fig08_loadfactor_efficiency"
  "fig08_loadfactor_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_loadfactor_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
