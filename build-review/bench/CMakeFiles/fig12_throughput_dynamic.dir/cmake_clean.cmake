file(REMOVE_RECURSE
  "CMakeFiles/fig12_throughput_dynamic.dir/fig12_throughput_dynamic.cpp.o"
  "CMakeFiles/fig12_throughput_dynamic.dir/fig12_throughput_dynamic.cpp.o.d"
  "fig12_throughput_dynamic"
  "fig12_throughput_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_throughput_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
