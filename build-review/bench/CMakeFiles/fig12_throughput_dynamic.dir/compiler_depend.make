# Empty compiler generated dependencies file for fig12_throughput_dynamic.
# This may be replaced when dependencies are built.
