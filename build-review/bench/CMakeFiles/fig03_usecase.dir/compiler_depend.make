# Empty compiler generated dependencies file for fig03_usecase.
# This may be replaced when dependencies are built.
