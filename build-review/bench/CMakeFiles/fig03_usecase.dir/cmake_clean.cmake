file(REMOVE_RECURSE
  "CMakeFiles/fig03_usecase.dir/fig03_usecase.cpp.o"
  "CMakeFiles/fig03_usecase.dir/fig03_usecase.cpp.o.d"
  "fig03_usecase"
  "fig03_usecase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_usecase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
