file(REMOVE_RECURSE
  "CMakeFiles/fig09_ccr_finishtime.dir/fig09_ccr_finishtime.cpp.o"
  "CMakeFiles/fig09_ccr_finishtime.dir/fig09_ccr_finishtime.cpp.o.d"
  "fig09_ccr_finishtime"
  "fig09_ccr_finishtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ccr_finishtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
