# Empty dependencies file for fig09_ccr_finishtime.
# This may be replaced when dependencies are built.
