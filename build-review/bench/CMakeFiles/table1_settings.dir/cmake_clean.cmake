file(REMOVE_RECURSE
  "CMakeFiles/table1_settings.dir/table1_settings.cpp.o"
  "CMakeFiles/table1_settings.dir/table1_settings.cpp.o.d"
  "table1_settings"
  "table1_settings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_settings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
