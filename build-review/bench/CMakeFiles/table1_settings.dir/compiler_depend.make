# Empty compiler generated dependencies file for table1_settings.
# This may be replaced when dependencies are built.
