# Empty compiler generated dependencies file for fig04_throughput_static.
# This may be replaced when dependencies are built.
