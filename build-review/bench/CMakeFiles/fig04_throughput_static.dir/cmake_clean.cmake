file(REMOVE_RECURSE
  "CMakeFiles/fig04_throughput_static.dir/fig04_throughput_static.cpp.o"
  "CMakeFiles/fig04_throughput_static.dir/fig04_throughput_static.cpp.o.d"
  "fig04_throughput_static"
  "fig04_throughput_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_throughput_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
