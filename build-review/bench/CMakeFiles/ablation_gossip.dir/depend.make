# Empty dependencies file for ablation_gossip.
# This may be replaced when dependencies are built.
