file(REMOVE_RECURSE
  "CMakeFiles/ablation_gossip.dir/ablation_gossip.cpp.o"
  "CMakeFiles/ablation_gossip.dir/ablation_gossip.cpp.o.d"
  "ablation_gossip"
  "ablation_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
