file(REMOVE_RECURSE
  "CMakeFiles/fig06_efficiency_static.dir/fig06_efficiency_static.cpp.o"
  "CMakeFiles/fig06_efficiency_static.dir/fig06_efficiency_static.cpp.o.d"
  "fig06_efficiency_static"
  "fig06_efficiency_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_efficiency_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
