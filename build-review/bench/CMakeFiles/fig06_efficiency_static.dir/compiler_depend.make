# Empty compiler generated dependencies file for fig06_efficiency_static.
# This may be replaced when dependencies are built.
