# Empty dependencies file for fig10_ccr_efficiency.
# This may be replaced when dependencies are built.
