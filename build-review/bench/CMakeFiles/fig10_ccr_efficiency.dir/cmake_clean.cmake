file(REMOVE_RECURSE
  "CMakeFiles/fig10_ccr_efficiency.dir/fig10_ccr_efficiency.cpp.o"
  "CMakeFiles/fig10_ccr_efficiency.dir/fig10_ccr_efficiency.cpp.o.d"
  "fig10_ccr_efficiency"
  "fig10_ccr_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ccr_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
