# Empty dependencies file for fig07_loadfactor_finishtime.
# This may be replaced when dependencies are built.
