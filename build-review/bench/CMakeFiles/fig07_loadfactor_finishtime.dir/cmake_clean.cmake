file(REMOVE_RECURSE
  "CMakeFiles/fig07_loadfactor_finishtime.dir/fig07_loadfactor_finishtime.cpp.o"
  "CMakeFiles/fig07_loadfactor_finishtime.dir/fig07_loadfactor_finishtime.cpp.o.d"
  "fig07_loadfactor_finishtime"
  "fig07_loadfactor_finishtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_loadfactor_finishtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
