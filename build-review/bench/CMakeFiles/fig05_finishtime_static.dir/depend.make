# Empty dependencies file for fig05_finishtime_static.
# This may be replaced when dependencies are built.
