# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig05_finishtime_static.
