file(REMOVE_RECURSE
  "CMakeFiles/fig05_finishtime_static.dir/fig05_finishtime_static.cpp.o"
  "CMakeFiles/fig05_finishtime_static.dir/fig05_finishtime_static.cpp.o.d"
  "fig05_finishtime_static"
  "fig05_finishtime_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_finishtime_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
