file(REMOVE_RECURSE
  "CMakeFiles/fig13_finishtime_dynamic.dir/fig13_finishtime_dynamic.cpp.o"
  "CMakeFiles/fig13_finishtime_dynamic.dir/fig13_finishtime_dynamic.cpp.o.d"
  "fig13_finishtime_dynamic"
  "fig13_finishtime_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_finishtime_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
