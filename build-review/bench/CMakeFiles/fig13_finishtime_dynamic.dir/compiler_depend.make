# Empty compiler generated dependencies file for fig13_finishtime_dynamic.
# This may be replaced when dependencies are built.
