file(REMOVE_RECURSE
  "CMakeFiles/ablation_lookahead.dir/ablation_lookahead.cpp.o"
  "CMakeFiles/ablation_lookahead.dir/ablation_lookahead.cpp.o.d"
  "ablation_lookahead"
  "ablation_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
