# Empty compiler generated dependencies file for ablation_lookahead.
# This may be replaced when dependencies are built.
