file(REMOVE_RECURSE
  "CMakeFiles/fig14_efficiency_dynamic.dir/fig14_efficiency_dynamic.cpp.o"
  "CMakeFiles/fig14_efficiency_dynamic.dir/fig14_efficiency_dynamic.cpp.o.d"
  "fig14_efficiency_dynamic"
  "fig14_efficiency_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_efficiency_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
