# Empty dependencies file for fig14_efficiency_dynamic.
# This may be replaced when dependencies are built.
