file(REMOVE_RECURSE
  "CMakeFiles/hotspot_analysis.dir/hotspot_analysis.cpp.o"
  "CMakeFiles/hotspot_analysis.dir/hotspot_analysis.cpp.o.d"
  "hotspot_analysis"
  "hotspot_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
