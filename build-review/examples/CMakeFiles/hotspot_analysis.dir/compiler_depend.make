# Empty compiler generated dependencies file for hotspot_analysis.
# This may be replaced when dependencies are built.
