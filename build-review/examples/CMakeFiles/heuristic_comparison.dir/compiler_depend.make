# Empty compiler generated dependencies file for heuristic_comparison.
# This may be replaced when dependencies are built.
