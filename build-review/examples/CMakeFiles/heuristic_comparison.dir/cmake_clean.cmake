file(REMOVE_RECURSE
  "CMakeFiles/heuristic_comparison.dir/heuristic_comparison.cpp.o"
  "CMakeFiles/heuristic_comparison.dir/heuristic_comparison.cpp.o.d"
  "heuristic_comparison"
  "heuristic_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristic_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
