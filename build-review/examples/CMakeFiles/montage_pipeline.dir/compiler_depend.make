# Empty compiler generated dependencies file for montage_pipeline.
# This may be replaced when dependencies are built.
