file(REMOVE_RECURSE
  "CMakeFiles/montage_pipeline.dir/montage_pipeline.cpp.o"
  "CMakeFiles/montage_pipeline.dir/montage_pipeline.cpp.o.d"
  "montage_pipeline"
  "montage_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/montage_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
