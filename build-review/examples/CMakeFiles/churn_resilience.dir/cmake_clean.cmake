file(REMOVE_RECURSE
  "CMakeFiles/churn_resilience.dir/churn_resilience.cpp.o"
  "CMakeFiles/churn_resilience.dir/churn_resilience.cpp.o.d"
  "churn_resilience"
  "churn_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
