# Empty compiler generated dependencies file for churn_resilience.
# This may be replaced when dependencies are built.
