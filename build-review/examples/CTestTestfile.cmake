# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[smoke.quickstart]=] "/root/repo/build-review/examples/quickstart")
set_tests_properties([=[smoke.quickstart]=] PROPERTIES  LABELS "smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
