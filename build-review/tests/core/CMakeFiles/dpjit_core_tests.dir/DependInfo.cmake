
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/estimates_test.cpp" "tests/core/CMakeFiles/dpjit_core_tests.dir/estimates_test.cpp.o" "gcc" "tests/core/CMakeFiles/dpjit_core_tests.dir/estimates_test.cpp.o.d"
  "/root/repo/tests/core/fig3_test.cpp" "tests/core/CMakeFiles/dpjit_core_tests.dir/fig3_test.cpp.o" "gcc" "tests/core/CMakeFiles/dpjit_core_tests.dir/fig3_test.cpp.o.d"
  "/root/repo/tests/core/first_phase_test.cpp" "tests/core/CMakeFiles/dpjit_core_tests.dir/first_phase_test.cpp.o" "gcc" "tests/core/CMakeFiles/dpjit_core_tests.dir/first_phase_test.cpp.o.d"
  "/root/repo/tests/core/fullahead_test.cpp" "tests/core/CMakeFiles/dpjit_core_tests.dir/fullahead_test.cpp.o" "gcc" "tests/core/CMakeFiles/dpjit_core_tests.dir/fullahead_test.cpp.o.d"
  "/root/repo/tests/core/grid_system_test.cpp" "tests/core/CMakeFiles/dpjit_core_tests.dir/grid_system_test.cpp.o" "gcc" "tests/core/CMakeFiles/dpjit_core_tests.dir/grid_system_test.cpp.o.d"
  "/root/repo/tests/core/ready_policies_test.cpp" "tests/core/CMakeFiles/dpjit_core_tests.dir/ready_policies_test.cpp.o" "gcc" "tests/core/CMakeFiles/dpjit_core_tests.dir/ready_policies_test.cpp.o.d"
  "/root/repo/tests/core/registry_test.cpp" "tests/core/CMakeFiles/dpjit_core_tests.dir/registry_test.cpp.o" "gcc" "tests/core/CMakeFiles/dpjit_core_tests.dir/registry_test.cpp.o.d"
  "/root/repo/tests/core/rpm_test.cpp" "tests/core/CMakeFiles/dpjit_core_tests.dir/rpm_test.cpp.o" "gcc" "tests/core/CMakeFiles/dpjit_core_tests.dir/rpm_test.cpp.o.d"
  "/root/repo/tests/core/timeline_test.cpp" "tests/core/CMakeFiles/dpjit_core_tests.dir/timeline_test.cpp.o" "gcc" "tests/core/CMakeFiles/dpjit_core_tests.dir/timeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/dpjit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
