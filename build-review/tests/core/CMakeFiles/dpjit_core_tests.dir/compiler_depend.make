# Empty compiler generated dependencies file for dpjit_core_tests.
# This may be replaced when dependencies are built.
