file(REMOVE_RECURSE
  "CMakeFiles/dpjit_core_tests.dir/estimates_test.cpp.o"
  "CMakeFiles/dpjit_core_tests.dir/estimates_test.cpp.o.d"
  "CMakeFiles/dpjit_core_tests.dir/fig3_test.cpp.o"
  "CMakeFiles/dpjit_core_tests.dir/fig3_test.cpp.o.d"
  "CMakeFiles/dpjit_core_tests.dir/first_phase_test.cpp.o"
  "CMakeFiles/dpjit_core_tests.dir/first_phase_test.cpp.o.d"
  "CMakeFiles/dpjit_core_tests.dir/fullahead_test.cpp.o"
  "CMakeFiles/dpjit_core_tests.dir/fullahead_test.cpp.o.d"
  "CMakeFiles/dpjit_core_tests.dir/grid_system_test.cpp.o"
  "CMakeFiles/dpjit_core_tests.dir/grid_system_test.cpp.o.d"
  "CMakeFiles/dpjit_core_tests.dir/ready_policies_test.cpp.o"
  "CMakeFiles/dpjit_core_tests.dir/ready_policies_test.cpp.o.d"
  "CMakeFiles/dpjit_core_tests.dir/registry_test.cpp.o"
  "CMakeFiles/dpjit_core_tests.dir/registry_test.cpp.o.d"
  "CMakeFiles/dpjit_core_tests.dir/rpm_test.cpp.o"
  "CMakeFiles/dpjit_core_tests.dir/rpm_test.cpp.o.d"
  "CMakeFiles/dpjit_core_tests.dir/timeline_test.cpp.o"
  "CMakeFiles/dpjit_core_tests.dir/timeline_test.cpp.o.d"
  "dpjit_core_tests"
  "dpjit_core_tests.pdb"
  "dpjit_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpjit_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
