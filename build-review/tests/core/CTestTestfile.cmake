# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build-review/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/core/dpjit_core_tests[1]_include.cmake")
