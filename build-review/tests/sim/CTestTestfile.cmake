# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build-review/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/sim/dpjit_sim_tests[1]_include.cmake")
