file(REMOVE_RECURSE
  "CMakeFiles/dpjit_sim_tests.dir/engine_test.cpp.o"
  "CMakeFiles/dpjit_sim_tests.dir/engine_test.cpp.o.d"
  "CMakeFiles/dpjit_sim_tests.dir/event_queue_test.cpp.o"
  "CMakeFiles/dpjit_sim_tests.dir/event_queue_test.cpp.o.d"
  "CMakeFiles/dpjit_sim_tests.dir/inline_fn_test.cpp.o"
  "CMakeFiles/dpjit_sim_tests.dir/inline_fn_test.cpp.o.d"
  "CMakeFiles/dpjit_sim_tests.dir/periodic_test.cpp.o"
  "CMakeFiles/dpjit_sim_tests.dir/periodic_test.cpp.o.d"
  "dpjit_sim_tests"
  "dpjit_sim_tests.pdb"
  "dpjit_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpjit_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
