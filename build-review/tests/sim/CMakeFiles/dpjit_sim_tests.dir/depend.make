# Empty dependencies file for dpjit_sim_tests.
# This may be replaced when dependencies are built.
