
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/engine_test.cpp" "tests/sim/CMakeFiles/dpjit_sim_tests.dir/engine_test.cpp.o" "gcc" "tests/sim/CMakeFiles/dpjit_sim_tests.dir/engine_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/sim/CMakeFiles/dpjit_sim_tests.dir/event_queue_test.cpp.o" "gcc" "tests/sim/CMakeFiles/dpjit_sim_tests.dir/event_queue_test.cpp.o.d"
  "/root/repo/tests/sim/inline_fn_test.cpp" "tests/sim/CMakeFiles/dpjit_sim_tests.dir/inline_fn_test.cpp.o" "gcc" "tests/sim/CMakeFiles/dpjit_sim_tests.dir/inline_fn_test.cpp.o.d"
  "/root/repo/tests/sim/periodic_test.cpp" "tests/sim/CMakeFiles/dpjit_sim_tests.dir/periodic_test.cpp.o" "gcc" "tests/sim/CMakeFiles/dpjit_sim_tests.dir/periodic_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/dpjit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
