# Empty dependencies file for dpjit_bench_common_compiles.
# This may be replaced when dependencies are built.
