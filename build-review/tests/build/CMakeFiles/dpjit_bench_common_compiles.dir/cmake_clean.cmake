file(REMOVE_RECURSE
  "CMakeFiles/dpjit_bench_common_compiles.dir/bench_common_standalone.cpp.o"
  "CMakeFiles/dpjit_bench_common_compiles.dir/bench_common_standalone.cpp.o.d"
  "dpjit_bench_common_compiles"
  "dpjit_bench_common_compiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpjit_bench_common_compiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
