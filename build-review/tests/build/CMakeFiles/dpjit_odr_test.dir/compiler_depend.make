# Empty compiler generated dependencies file for dpjit_odr_test.
# This may be replaced when dependencies are built.
