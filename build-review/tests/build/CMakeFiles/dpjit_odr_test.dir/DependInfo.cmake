
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/build/odr_test.cpp" "tests/build/CMakeFiles/dpjit_odr_test.dir/odr_test.cpp.o" "gcc" "tests/build/CMakeFiles/dpjit_odr_test.dir/odr_test.cpp.o.d"
  "/root/repo/tests/build/odr_tu_a.cpp" "tests/build/CMakeFiles/dpjit_odr_test.dir/odr_tu_a.cpp.o" "gcc" "tests/build/CMakeFiles/dpjit_odr_test.dir/odr_tu_a.cpp.o.d"
  "/root/repo/tests/build/odr_tu_b.cpp" "tests/build/CMakeFiles/dpjit_odr_test.dir/odr_tu_b.cpp.o" "gcc" "tests/build/CMakeFiles/dpjit_odr_test.dir/odr_tu_b.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/dpjit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
