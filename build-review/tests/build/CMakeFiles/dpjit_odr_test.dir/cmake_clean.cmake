file(REMOVE_RECURSE
  "CMakeFiles/dpjit_odr_test.dir/odr_test.cpp.o"
  "CMakeFiles/dpjit_odr_test.dir/odr_test.cpp.o.d"
  "CMakeFiles/dpjit_odr_test.dir/odr_tu_a.cpp.o"
  "CMakeFiles/dpjit_odr_test.dir/odr_tu_a.cpp.o.d"
  "CMakeFiles/dpjit_odr_test.dir/odr_tu_b.cpp.o"
  "CMakeFiles/dpjit_odr_test.dir/odr_tu_b.cpp.o.d"
  "dpjit_odr_test"
  "dpjit_odr_test.pdb"
  "dpjit_odr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpjit_odr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
