# CMake generated Testfile for 
# Source directory: /root/repo/tests/build
# Build directory: /root/repo/build-review/tests/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/build/dpjit_odr_test[1]_include.cmake")
add_test([=[build.bench_common_standalone]=] "/root/repo/build-review/tests/build/dpjit_bench_common_compiles")
set_tests_properties([=[build.bench_common_standalone]=] PROPERTIES  LABELS "build" _BACKTRACE_TRIPLES "/root/repo/tests/build/CMakeLists.txt;20;add_test;/root/repo/tests/build/CMakeLists.txt;0;")
