add_test([=[OdrTest.BothTranslationUnitsLink]=]  /root/repo/build-review/tests/build/dpjit_odr_test [==[--gtest_filter=OdrTest.BothTranslationUnitsLink]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[OdrTest.BothTranslationUnitsLink]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-review/tests/build SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] LABELS build)
set(  dpjit_odr_test_TESTS OdrTest.BothTranslationUnitsLink)
