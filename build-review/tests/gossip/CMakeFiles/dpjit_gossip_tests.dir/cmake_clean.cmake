file(REMOVE_RECURSE
  "CMakeFiles/dpjit_gossip_tests.dir/mixed_gossip_test.cpp.o"
  "CMakeFiles/dpjit_gossip_tests.dir/mixed_gossip_test.cpp.o.d"
  "CMakeFiles/dpjit_gossip_tests.dir/view_test.cpp.o"
  "CMakeFiles/dpjit_gossip_tests.dir/view_test.cpp.o.d"
  "dpjit_gossip_tests"
  "dpjit_gossip_tests.pdb"
  "dpjit_gossip_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpjit_gossip_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
