# Empty dependencies file for dpjit_gossip_tests.
# This may be replaced when dependencies are built.
