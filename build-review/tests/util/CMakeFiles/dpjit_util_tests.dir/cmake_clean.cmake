file(REMOVE_RECURSE
  "CMakeFiles/dpjit_util_tests.dir/config_test.cpp.o"
  "CMakeFiles/dpjit_util_tests.dir/config_test.cpp.o.d"
  "CMakeFiles/dpjit_util_tests.dir/csv_table_test.cpp.o"
  "CMakeFiles/dpjit_util_tests.dir/csv_table_test.cpp.o.d"
  "CMakeFiles/dpjit_util_tests.dir/json_test.cpp.o"
  "CMakeFiles/dpjit_util_tests.dir/json_test.cpp.o.d"
  "CMakeFiles/dpjit_util_tests.dir/parallel_test.cpp.o"
  "CMakeFiles/dpjit_util_tests.dir/parallel_test.cpp.o.d"
  "CMakeFiles/dpjit_util_tests.dir/rng_test.cpp.o"
  "CMakeFiles/dpjit_util_tests.dir/rng_test.cpp.o.d"
  "CMakeFiles/dpjit_util_tests.dir/stats_test.cpp.o"
  "CMakeFiles/dpjit_util_tests.dir/stats_test.cpp.o.d"
  "dpjit_util_tests"
  "dpjit_util_tests.pdb"
  "dpjit_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpjit_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
