
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/config_test.cpp" "tests/util/CMakeFiles/dpjit_util_tests.dir/config_test.cpp.o" "gcc" "tests/util/CMakeFiles/dpjit_util_tests.dir/config_test.cpp.o.d"
  "/root/repo/tests/util/csv_table_test.cpp" "tests/util/CMakeFiles/dpjit_util_tests.dir/csv_table_test.cpp.o" "gcc" "tests/util/CMakeFiles/dpjit_util_tests.dir/csv_table_test.cpp.o.d"
  "/root/repo/tests/util/json_test.cpp" "tests/util/CMakeFiles/dpjit_util_tests.dir/json_test.cpp.o" "gcc" "tests/util/CMakeFiles/dpjit_util_tests.dir/json_test.cpp.o.d"
  "/root/repo/tests/util/parallel_test.cpp" "tests/util/CMakeFiles/dpjit_util_tests.dir/parallel_test.cpp.o" "gcc" "tests/util/CMakeFiles/dpjit_util_tests.dir/parallel_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/util/CMakeFiles/dpjit_util_tests.dir/rng_test.cpp.o" "gcc" "tests/util/CMakeFiles/dpjit_util_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/util/CMakeFiles/dpjit_util_tests.dir/stats_test.cpp.o" "gcc" "tests/util/CMakeFiles/dpjit_util_tests.dir/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/dpjit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
