# Empty dependencies file for dpjit_util_tests.
# This may be replaced when dependencies are built.
