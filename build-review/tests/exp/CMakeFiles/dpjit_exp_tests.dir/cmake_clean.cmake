file(REMOVE_RECURSE
  "CMakeFiles/dpjit_exp_tests.dir/reporters_test.cpp.o"
  "CMakeFiles/dpjit_exp_tests.dir/reporters_test.cpp.o.d"
  "CMakeFiles/dpjit_exp_tests.dir/sweep_determinism_test.cpp.o"
  "CMakeFiles/dpjit_exp_tests.dir/sweep_determinism_test.cpp.o.d"
  "CMakeFiles/dpjit_exp_tests.dir/trace_analysis_test.cpp.o"
  "CMakeFiles/dpjit_exp_tests.dir/trace_analysis_test.cpp.o.d"
  "CMakeFiles/dpjit_exp_tests.dir/workload_factory_test.cpp.o"
  "CMakeFiles/dpjit_exp_tests.dir/workload_factory_test.cpp.o.d"
  "dpjit_exp_tests"
  "dpjit_exp_tests.pdb"
  "dpjit_exp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpjit_exp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
