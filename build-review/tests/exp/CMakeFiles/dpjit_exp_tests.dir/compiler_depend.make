# Empty compiler generated dependencies file for dpjit_exp_tests.
# This may be replaced when dependencies are built.
