
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exp/reporters_test.cpp" "tests/exp/CMakeFiles/dpjit_exp_tests.dir/reporters_test.cpp.o" "gcc" "tests/exp/CMakeFiles/dpjit_exp_tests.dir/reporters_test.cpp.o.d"
  "/root/repo/tests/exp/sweep_determinism_test.cpp" "tests/exp/CMakeFiles/dpjit_exp_tests.dir/sweep_determinism_test.cpp.o" "gcc" "tests/exp/CMakeFiles/dpjit_exp_tests.dir/sweep_determinism_test.cpp.o.d"
  "/root/repo/tests/exp/trace_analysis_test.cpp" "tests/exp/CMakeFiles/dpjit_exp_tests.dir/trace_analysis_test.cpp.o" "gcc" "tests/exp/CMakeFiles/dpjit_exp_tests.dir/trace_analysis_test.cpp.o.d"
  "/root/repo/tests/exp/workload_factory_test.cpp" "tests/exp/CMakeFiles/dpjit_exp_tests.dir/workload_factory_test.cpp.o" "gcc" "tests/exp/CMakeFiles/dpjit_exp_tests.dir/workload_factory_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/dpjit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
