# CMake generated Testfile for 
# Source directory: /root/repo/tests/net
# Build directory: /root/repo/build-review/tests/net
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/net/dpjit_net_tests[1]_include.cmake")
