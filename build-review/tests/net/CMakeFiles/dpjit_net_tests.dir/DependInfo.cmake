
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/flow_sharing_test.cpp" "tests/net/CMakeFiles/dpjit_net_tests.dir/flow_sharing_test.cpp.o" "gcc" "tests/net/CMakeFiles/dpjit_net_tests.dir/flow_sharing_test.cpp.o.d"
  "/root/repo/tests/net/landmark_test.cpp" "tests/net/CMakeFiles/dpjit_net_tests.dir/landmark_test.cpp.o" "gcc" "tests/net/CMakeFiles/dpjit_net_tests.dir/landmark_test.cpp.o.d"
  "/root/repo/tests/net/routing_test.cpp" "tests/net/CMakeFiles/dpjit_net_tests.dir/routing_test.cpp.o" "gcc" "tests/net/CMakeFiles/dpjit_net_tests.dir/routing_test.cpp.o.d"
  "/root/repo/tests/net/stats_test.cpp" "tests/net/CMakeFiles/dpjit_net_tests.dir/stats_test.cpp.o" "gcc" "tests/net/CMakeFiles/dpjit_net_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/net/topology_test.cpp" "tests/net/CMakeFiles/dpjit_net_tests.dir/topology_test.cpp.o" "gcc" "tests/net/CMakeFiles/dpjit_net_tests.dir/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/dpjit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
