# Empty compiler generated dependencies file for dpjit_net_tests.
# This may be replaced when dependencies are built.
