file(REMOVE_RECURSE
  "CMakeFiles/dpjit_net_tests.dir/flow_sharing_test.cpp.o"
  "CMakeFiles/dpjit_net_tests.dir/flow_sharing_test.cpp.o.d"
  "CMakeFiles/dpjit_net_tests.dir/landmark_test.cpp.o"
  "CMakeFiles/dpjit_net_tests.dir/landmark_test.cpp.o.d"
  "CMakeFiles/dpjit_net_tests.dir/routing_test.cpp.o"
  "CMakeFiles/dpjit_net_tests.dir/routing_test.cpp.o.d"
  "CMakeFiles/dpjit_net_tests.dir/stats_test.cpp.o"
  "CMakeFiles/dpjit_net_tests.dir/stats_test.cpp.o.d"
  "CMakeFiles/dpjit_net_tests.dir/topology_test.cpp.o"
  "CMakeFiles/dpjit_net_tests.dir/topology_test.cpp.o.d"
  "dpjit_net_tests"
  "dpjit_net_tests.pdb"
  "dpjit_net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpjit_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
