# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("net")
subdirs("dag")
subdirs("gossip")
subdirs("grid")
subdirs("core")
subdirs("exp")
subdirs("integration")
subdirs("build")
