# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build-review/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/integration/dpjit_integration_tests[1]_include.cmake")
