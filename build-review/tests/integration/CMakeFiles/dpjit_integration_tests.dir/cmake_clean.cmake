file(REMOVE_RECURSE
  "CMakeFiles/dpjit_integration_tests.dir/churn_integration_test.cpp.o"
  "CMakeFiles/dpjit_integration_tests.dir/churn_integration_test.cpp.o.d"
  "CMakeFiles/dpjit_integration_tests.dir/end_to_end_test.cpp.o"
  "CMakeFiles/dpjit_integration_tests.dir/end_to_end_test.cpp.o.d"
  "CMakeFiles/dpjit_integration_tests.dir/invariants_test.cpp.o"
  "CMakeFiles/dpjit_integration_tests.dir/invariants_test.cpp.o.d"
  "CMakeFiles/dpjit_integration_tests.dir/metrics_test.cpp.o"
  "CMakeFiles/dpjit_integration_tests.dir/metrics_test.cpp.o.d"
  "CMakeFiles/dpjit_integration_tests.dir/property_test.cpp.o"
  "CMakeFiles/dpjit_integration_tests.dir/property_test.cpp.o.d"
  "dpjit_integration_tests"
  "dpjit_integration_tests.pdb"
  "dpjit_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpjit_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
