
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/churn_integration_test.cpp" "tests/integration/CMakeFiles/dpjit_integration_tests.dir/churn_integration_test.cpp.o" "gcc" "tests/integration/CMakeFiles/dpjit_integration_tests.dir/churn_integration_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/integration/CMakeFiles/dpjit_integration_tests.dir/end_to_end_test.cpp.o" "gcc" "tests/integration/CMakeFiles/dpjit_integration_tests.dir/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/invariants_test.cpp" "tests/integration/CMakeFiles/dpjit_integration_tests.dir/invariants_test.cpp.o" "gcc" "tests/integration/CMakeFiles/dpjit_integration_tests.dir/invariants_test.cpp.o.d"
  "/root/repo/tests/integration/metrics_test.cpp" "tests/integration/CMakeFiles/dpjit_integration_tests.dir/metrics_test.cpp.o" "gcc" "tests/integration/CMakeFiles/dpjit_integration_tests.dir/metrics_test.cpp.o.d"
  "/root/repo/tests/integration/property_test.cpp" "tests/integration/CMakeFiles/dpjit_integration_tests.dir/property_test.cpp.o" "gcc" "tests/integration/CMakeFiles/dpjit_integration_tests.dir/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/dpjit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
