# Empty compiler generated dependencies file for dpjit_integration_tests.
# This may be replaced when dependencies are built.
