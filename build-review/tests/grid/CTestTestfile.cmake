# CMake generated Testfile for 
# Source directory: /root/repo/tests/grid
# Build directory: /root/repo/build-review/tests/grid
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/grid/dpjit_grid_tests[1]_include.cmake")
