file(REMOVE_RECURSE
  "CMakeFiles/dpjit_grid_tests.dir/churn_test.cpp.o"
  "CMakeFiles/dpjit_grid_tests.dir/churn_test.cpp.o.d"
  "CMakeFiles/dpjit_grid_tests.dir/grid_node_test.cpp.o"
  "CMakeFiles/dpjit_grid_tests.dir/grid_node_test.cpp.o.d"
  "CMakeFiles/dpjit_grid_tests.dir/transfer_stress_test.cpp.o"
  "CMakeFiles/dpjit_grid_tests.dir/transfer_stress_test.cpp.o.d"
  "CMakeFiles/dpjit_grid_tests.dir/transfer_test.cpp.o"
  "CMakeFiles/dpjit_grid_tests.dir/transfer_test.cpp.o.d"
  "dpjit_grid_tests"
  "dpjit_grid_tests.pdb"
  "dpjit_grid_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpjit_grid_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
