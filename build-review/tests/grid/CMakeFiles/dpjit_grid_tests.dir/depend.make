# Empty dependencies file for dpjit_grid_tests.
# This may be replaced when dependencies are built.
