
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/grid/churn_test.cpp" "tests/grid/CMakeFiles/dpjit_grid_tests.dir/churn_test.cpp.o" "gcc" "tests/grid/CMakeFiles/dpjit_grid_tests.dir/churn_test.cpp.o.d"
  "/root/repo/tests/grid/grid_node_test.cpp" "tests/grid/CMakeFiles/dpjit_grid_tests.dir/grid_node_test.cpp.o" "gcc" "tests/grid/CMakeFiles/dpjit_grid_tests.dir/grid_node_test.cpp.o.d"
  "/root/repo/tests/grid/transfer_stress_test.cpp" "tests/grid/CMakeFiles/dpjit_grid_tests.dir/transfer_stress_test.cpp.o" "gcc" "tests/grid/CMakeFiles/dpjit_grid_tests.dir/transfer_stress_test.cpp.o.d"
  "/root/repo/tests/grid/transfer_test.cpp" "tests/grid/CMakeFiles/dpjit_grid_tests.dir/transfer_test.cpp.o" "gcc" "tests/grid/CMakeFiles/dpjit_grid_tests.dir/transfer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/dpjit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
