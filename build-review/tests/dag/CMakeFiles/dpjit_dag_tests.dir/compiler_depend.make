# Empty compiler generated dependencies file for dpjit_dag_tests.
# This may be replaced when dependencies are built.
