
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dag/critical_path_test.cpp" "tests/dag/CMakeFiles/dpjit_dag_tests.dir/critical_path_test.cpp.o" "gcc" "tests/dag/CMakeFiles/dpjit_dag_tests.dir/critical_path_test.cpp.o.d"
  "/root/repo/tests/dag/generator_test.cpp" "tests/dag/CMakeFiles/dpjit_dag_tests.dir/generator_test.cpp.o" "gcc" "tests/dag/CMakeFiles/dpjit_dag_tests.dir/generator_test.cpp.o.d"
  "/root/repo/tests/dag/serialize_test.cpp" "tests/dag/CMakeFiles/dpjit_dag_tests.dir/serialize_test.cpp.o" "gcc" "tests/dag/CMakeFiles/dpjit_dag_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/dag/templates_test.cpp" "tests/dag/CMakeFiles/dpjit_dag_tests.dir/templates_test.cpp.o" "gcc" "tests/dag/CMakeFiles/dpjit_dag_tests.dir/templates_test.cpp.o.d"
  "/root/repo/tests/dag/workflow_test.cpp" "tests/dag/CMakeFiles/dpjit_dag_tests.dir/workflow_test.cpp.o" "gcc" "tests/dag/CMakeFiles/dpjit_dag_tests.dir/workflow_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/dpjit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
