file(REMOVE_RECURSE
  "CMakeFiles/dpjit_dag_tests.dir/critical_path_test.cpp.o"
  "CMakeFiles/dpjit_dag_tests.dir/critical_path_test.cpp.o.d"
  "CMakeFiles/dpjit_dag_tests.dir/generator_test.cpp.o"
  "CMakeFiles/dpjit_dag_tests.dir/generator_test.cpp.o.d"
  "CMakeFiles/dpjit_dag_tests.dir/serialize_test.cpp.o"
  "CMakeFiles/dpjit_dag_tests.dir/serialize_test.cpp.o.d"
  "CMakeFiles/dpjit_dag_tests.dir/templates_test.cpp.o"
  "CMakeFiles/dpjit_dag_tests.dir/templates_test.cpp.o.d"
  "CMakeFiles/dpjit_dag_tests.dir/workflow_test.cpp.o"
  "CMakeFiles/dpjit_dag_tests.dir/workflow_test.cpp.o.d"
  "dpjit_dag_tests"
  "dpjit_dag_tests.pdb"
  "dpjit_dag_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpjit_dag_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
