# CMake generated Testfile for 
# Source directory: /root/repo/tests/dag
# Build directory: /root/repo/build-review/tests/dag
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/dag/dpjit_dag_tests[1]_include.cmake")
