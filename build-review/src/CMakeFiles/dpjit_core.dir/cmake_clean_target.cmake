file(REMOVE_RECURSE
  "libdpjit_core.a"
)
