# Empty compiler generated dependencies file for dpjit_core.
# This may be replaced when dependencies are built.
