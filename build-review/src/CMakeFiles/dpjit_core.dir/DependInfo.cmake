
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dispatch.cpp" "src/CMakeFiles/dpjit_core.dir/core/dispatch.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/dispatch.cpp.o.d"
  "/root/repo/src/core/estimates.cpp" "src/CMakeFiles/dpjit_core.dir/core/estimates.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/estimates.cpp.o.d"
  "/root/repo/src/core/fullahead/heft.cpp" "src/CMakeFiles/dpjit_core.dir/core/fullahead/heft.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/fullahead/heft.cpp.o.d"
  "/root/repo/src/core/fullahead/lookahead.cpp" "src/CMakeFiles/dpjit_core.dir/core/fullahead/lookahead.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/fullahead/lookahead.cpp.o.d"
  "/root/repo/src/core/fullahead/timeline.cpp" "src/CMakeFiles/dpjit_core.dir/core/fullahead/timeline.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/fullahead/timeline.cpp.o.d"
  "/root/repo/src/core/grid_system.cpp" "src/CMakeFiles/dpjit_core.dir/core/grid_system.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/grid_system.cpp.o.d"
  "/root/repo/src/core/policies/batch_heuristics.cpp" "src/CMakeFiles/dpjit_core.dir/core/policies/batch_heuristics.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/policies/batch_heuristics.cpp.o.d"
  "/root/repo/src/core/policies/dheft.cpp" "src/CMakeFiles/dpjit_core.dir/core/policies/dheft.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/policies/dheft.cpp.o.d"
  "/root/repo/src/core/policies/dsdf.cpp" "src/CMakeFiles/dpjit_core.dir/core/policies/dsdf.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/policies/dsdf.cpp.o.d"
  "/root/repo/src/core/policies/dsmf.cpp" "src/CMakeFiles/dpjit_core.dir/core/policies/dsmf.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/policies/dsmf.cpp.o.d"
  "/root/repo/src/core/policies/ready_policies.cpp" "src/CMakeFiles/dpjit_core.dir/core/policies/ready_policies.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/policies/ready_policies.cpp.o.d"
  "/root/repo/src/core/policy_registry.cpp" "src/CMakeFiles/dpjit_core.dir/core/policy_registry.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/policy_registry.cpp.o.d"
  "/root/repo/src/core/reschedule.cpp" "src/CMakeFiles/dpjit_core.dir/core/reschedule.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/reschedule.cpp.o.d"
  "/root/repo/src/core/rpm.cpp" "src/CMakeFiles/dpjit_core.dir/core/rpm.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/core/rpm.cpp.o.d"
  "/root/repo/src/dag/critical_path.cpp" "src/CMakeFiles/dpjit_core.dir/dag/critical_path.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/dag/critical_path.cpp.o.d"
  "/root/repo/src/dag/dot.cpp" "src/CMakeFiles/dpjit_core.dir/dag/dot.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/dag/dot.cpp.o.d"
  "/root/repo/src/dag/generator.cpp" "src/CMakeFiles/dpjit_core.dir/dag/generator.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/dag/generator.cpp.o.d"
  "/root/repo/src/dag/serialize.cpp" "src/CMakeFiles/dpjit_core.dir/dag/serialize.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/dag/serialize.cpp.o.d"
  "/root/repo/src/dag/templates.cpp" "src/CMakeFiles/dpjit_core.dir/dag/templates.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/dag/templates.cpp.o.d"
  "/root/repo/src/dag/workflow.cpp" "src/CMakeFiles/dpjit_core.dir/dag/workflow.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/dag/workflow.cpp.o.d"
  "/root/repo/src/exp/experiment.cpp" "src/CMakeFiles/dpjit_core.dir/exp/experiment.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/exp/experiment.cpp.o.d"
  "/root/repo/src/exp/metrics.cpp" "src/CMakeFiles/dpjit_core.dir/exp/metrics.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/exp/metrics.cpp.o.d"
  "/root/repo/src/exp/reporters.cpp" "src/CMakeFiles/dpjit_core.dir/exp/reporters.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/exp/reporters.cpp.o.d"
  "/root/repo/src/exp/sweep.cpp" "src/CMakeFiles/dpjit_core.dir/exp/sweep.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/exp/sweep.cpp.o.d"
  "/root/repo/src/exp/trace_analysis.cpp" "src/CMakeFiles/dpjit_core.dir/exp/trace_analysis.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/exp/trace_analysis.cpp.o.d"
  "/root/repo/src/exp/workload_factory.cpp" "src/CMakeFiles/dpjit_core.dir/exp/workload_factory.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/exp/workload_factory.cpp.o.d"
  "/root/repo/src/gossip/mixed_gossip.cpp" "src/CMakeFiles/dpjit_core.dir/gossip/mixed_gossip.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/gossip/mixed_gossip.cpp.o.d"
  "/root/repo/src/gossip/newscast.cpp" "src/CMakeFiles/dpjit_core.dir/gossip/newscast.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/gossip/newscast.cpp.o.d"
  "/root/repo/src/grid/churn.cpp" "src/CMakeFiles/dpjit_core.dir/grid/churn.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/grid/churn.cpp.o.d"
  "/root/repo/src/grid/grid_node.cpp" "src/CMakeFiles/dpjit_core.dir/grid/grid_node.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/grid/grid_node.cpp.o.d"
  "/root/repo/src/grid/transfer_manager.cpp" "src/CMakeFiles/dpjit_core.dir/grid/transfer_manager.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/grid/transfer_manager.cpp.o.d"
  "/root/repo/src/net/flow_sharing.cpp" "src/CMakeFiles/dpjit_core.dir/net/flow_sharing.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/net/flow_sharing.cpp.o.d"
  "/root/repo/src/net/landmark.cpp" "src/CMakeFiles/dpjit_core.dir/net/landmark.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/net/landmark.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/CMakeFiles/dpjit_core.dir/net/routing.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/net/routing.cpp.o.d"
  "/root/repo/src/net/stats.cpp" "src/CMakeFiles/dpjit_core.dir/net/stats.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/net/stats.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/dpjit_core.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/net/topology.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/dpjit_core.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/dpjit_core.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/periodic.cpp" "src/CMakeFiles/dpjit_core.dir/sim/periodic.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/sim/periodic.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/dpjit_core.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/sim/trace.cpp.o.d"
  "/root/repo/src/util/config.cpp" "src/CMakeFiles/dpjit_core.dir/util/config.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/util/config.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/dpjit_core.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/CMakeFiles/dpjit_core.dir/util/json.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/util/json.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/dpjit_core.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/util/log.cpp.o.d"
  "/root/repo/src/util/parallel.cpp" "src/CMakeFiles/dpjit_core.dir/util/parallel.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/util/parallel.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/dpjit_core.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/dpjit_core.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table_printer.cpp" "src/CMakeFiles/dpjit_core.dir/util/table_printer.cpp.o" "gcc" "src/CMakeFiles/dpjit_core.dir/util/table_printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
