// Extension bench: lookahead HEFT (paper related-work [24], Bittencourt et
// al.) against plain HEFT, SMF and DSMF. The reference reports up to 20%
// average workflow execution time improvement of lookahead over plain HEFT.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  auto base = bench::base_config(cli, 80);  // lookahead planning is O(V N^2 C)
  bench::banner("Extension: lookahead HEFT [24] vs HEFT vs SMF vs DSMF", base);

  std::vector<exp::ExperimentConfig> configs;
  for (const char* algo : {"heft", "heft-la", "smf", "dsmf"}) {
    exp::ExperimentConfig cfg = base;
    cfg.algorithm = algo;
    configs.push_back(cfg);
  }
  std::fprintf(stderr, "running %zu configurations...\n", configs.size());
  const auto results = exp::run_sweep(configs);

  exp::print_summary_table(std::cout, results);

  const double heft_act = results[0].act;
  const double la_act = results[1].act;
  if (heft_act > 0.0) {
    std::printf("\nlookahead vs plain HEFT: ACT %+.1f%% (reference [24] reports up to -20%%)\n",
                (la_act - heft_act) / heft_act * 100.0);
  }
  return 0;
}
