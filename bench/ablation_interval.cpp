// Ablation (this repo): sensitivity of the just-in-time model to the
// scheduling interval. The paper fixes it at 15 minutes; this sweep shows the
// trade-off it embodies - shorter intervals dispatch schedule points sooner
// (less dead time between DAG levels) but react to staler gossip relative to
// activity, while very long intervals dominate the completion time with
// waiting. Full-ahead SMF is shown for reference (it dispatches on readiness
// and is insensitive to the interval by design).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  auto base = bench::base_config(cli, 150);
  bench::banner("Ablation: scheduling interval (just-in-time granularity)", base);

  const std::vector<double> minutes{2.5, 5.0, 15.0, 30.0, 60.0};
  std::vector<exp::ExperimentConfig> configs;
  std::vector<std::string> labels;
  for (const char* algo : {"dsmf", "smf"}) {
    for (double m : minutes) {
      exp::ExperimentConfig cfg = base;
      cfg.algorithm = algo;
      cfg.system.scheduling_interval_s = m * 60.0;
      cfg.system.first_schedule_at_s = m * 60.0;
      configs.push_back(cfg);
      labels.push_back(std::string(algo) + " @ " + util::TablePrinter::fmt(m, 3) + " min");
    }
  }
  std::fprintf(stderr, "running %zu configurations...\n", configs.size());
  const auto results = exp::run_sweep(configs);

  util::TablePrinter t({"configuration", "ACT(s)", "AE", "finished"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    t.add_row({labels[i], util::TablePrinter::fmt(results[i].act, 6),
               util::TablePrinter::fmt(results[i].ae, 4),
               std::to_string(results[i].workflows_finished)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: DSMF's ACT shrinks as the interval shrinks (each DAG level\n"
               "waits ~interval/2 less), flattening below ~5 min; SMF is interval-invariant.\n";
  return 0;
}
