// Fig. 9: average finish-time under the paper's four CCR cases
// (load 10-1000 / 100-10000 MI x data 10-1000 / 100-10000 Mb).
//
// Expected shape: SMF good everywhere; DSMF the best decentralized algorithm
// in every CCR regime.
#include "bench_common.hpp"

namespace {
// The four registered ccr/* scenarios in the paper's presentation order, with
// the figure's row labels.
struct CcrCase {
  const char* scenario;
  const char* label;
};
constexpr CcrCase kCases[] = {
    {"ccr/balanced-light", "load:10-1000/data:10-1000"},        // CCR ~ 1.6
    {"ccr/data-heavy", "load:10-1000/data:100-10000"},          // CCR ~ 16
    {"ccr/compute-heavy", "load:100-10000/data:10-1000"},       // CCR ~ 0.16
    {"ccr/balanced-heavy", "load:100-10000/data:100-10000"},    // CCR ~ 1.6
};
}  // namespace

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  auto base = bench::scenario_config(cli, "paper/static-n1000", /*bench_scale_nodes=*/150);
  bench::banner("Fig. 9: average finish-time under different CCRs", base);

  std::vector<exp::ExperimentConfig> configs;
  for (const auto& c : kCases) {
    const auto cfg = exp::scenario_registry().at(c.scenario).apply(base);
    for (auto& one : exp::across_algorithms(cfg)) configs.push_back(one);
  }
  const int seeds = static_cast<int>(cli.get_int("seeds", 1));
  std::fprintf(stderr, "running %zu configurations x %d seed(s)...\n", configs.size(), seeds);
  const auto results = bench::run_seed_averaged(configs, seeds);

  const auto algos = core::paper_algorithms();
  std::vector<std::string> x_values;
  for (const auto& c : kCases) x_values.emplace_back(c.label);
  std::vector<std::vector<double>> act(algos.size());
  for (std::size_t i = 0; i < results.size(); ++i) act[i % algos.size()].push_back(results[i].act);
  exp::print_sweep_table(std::cout, "ccr_case", x_values, algos, act);
  return 0;
}
