// google-benchmark micro-benchmarks for the primitives whose costs the
// paper's complexity analysis (Section III.E) discusses: RPM computation
// (O(edges)), schedule-point sorting, target selection over RSS, the event
// queue, Waxman generation + routing, and one gossip cycle.
#include <benchmark/benchmark.h>

#include "core/estimates.hpp"
#include "core/rpm.hpp"
#include "dag/generator.hpp"
#include "gossip/mixed_gossip.hpp"
#include "net/routing.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dpjit;

void BM_RpmComputation(benchmark::State& state) {
  util::Rng rng(7);
  dag::GeneratorParams params;
  params.min_tasks = params.max_tasks = static_cast<int>(state.range(0));
  const auto wf = dag::generate_workflow(WorkflowId{1}, params, rng);
  const dag::AverageEstimates avg{6.2, 5.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::rest_path_makespans(wf, avg));
  }
  state.SetComplexityN(static_cast<std::int64_t>(wf.edge_count()));
}
BENCHMARK(BM_RpmComputation)->Arg(8)->Arg(16)->Arg(30)->Complexity(benchmark::oN);

void BM_FinishTimeEstimate(benchmark::State& state) {
  core::TaskEstimateInputs task;
  task.load_mi = 5000;
  for (int i = 0; i < 4; ++i) task.inputs.push_back({NodeId{i}, 500.0});
  const gossip::ResourceEntry r{NodeId{9}, 3000.0, 8.0, 0.0, 0};
  const auto bw = [](NodeId, NodeId) { return 5.0; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::estimate_finish_time(task, r, bw));
  }
}
BENCHMARK(BM_FinishTimeEstimate);

void BM_TargetSelection(benchmark::State& state) {
  // Formula (9) over an RSS of the given size (paper: O(log n) entries).
  const auto rss_size = static_cast<std::size_t>(state.range(0));
  std::vector<gossip::ResourceEntry> rss;
  util::Rng rng(3);
  for (std::size_t i = 0; i < rss_size; ++i) {
    rss.push_back({NodeId{static_cast<int>(i)}, rng.uniform(0, 50000),
                   static_cast<double>(1 << rng.uniform_int(0, 4)), 0.0, 0});
  }
  core::TaskEstimateInputs task;
  task.load_mi = 5000;
  task.inputs.push_back({NodeId{1}, 500.0});
  const auto bw = [](NodeId, NodeId) { return 5.0; };
  for (auto _ : state) {
    double best = kInf;
    for (const auto& r : rss) {
      best = std::min(best, core::estimate_finish_time(task, r, bw).finish_s);
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_TargetSelection)->Arg(10)->Arg(20)->Arg(30);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  util::Rng rng(11);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) q.schedule(rng.uniform(0, 1e6), [] {});
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

void BM_WaxmanGeneration(benchmark::State& state) {
  net::TopologyParams params;
  params.node_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(5);
    benchmark::DoNotOptimize(net::Topology::generate_waxman(params, rng));
  }
}
BENCHMARK(BM_WaxmanGeneration)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_RoutingApsp(benchmark::State& state) {
  net::TopologyParams params;
  params.node_count = static_cast<int>(state.range(0));
  util::Rng rng(5);
  const auto topo = net::Topology::generate_waxman(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Routing(topo));
  }
}
BENCHMARK(BM_RoutingApsp)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_GossipCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Engine engine;
  gossip::GossipParams params;
  gossip::MixedGossipService service(
      engine, params, n,
      [](NodeId id, double& load, double& cap) {
        load = 100.0 * id.get();
        cap = 4.0;
      },
      [](NodeId) { return true; }, [](NodeId, NodeId) { return 0.0; },
      [](NodeId) { return 5.0; }, util::Rng(13));
  for (int i = 0; i < n; ++i) service.node_joined(NodeId{i}, {NodeId{(i + 1) % n}});
  std::uint64_t cycle = 0;
  for (auto _ : state) {
    service.run_cycle(cycle++);
    engine.run_until(engine.now() + 1.0);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GossipCycle)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
