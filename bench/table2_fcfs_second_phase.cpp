// The in-text second-phase ablation of Section IV.B: min-min, max-min,
// sufferage and DHEFT with their paired second-phase policies (STF/LTF/LSF/
// longest-RPM) versus their original versions using FCFS at the resource
// nodes. Paper numbers (converged ACT): 31977/33495/30321/30728 with the
// second phase vs 32874/33746/32781/32636 with FCFS - i.e. the dedicated
// second phase helps every heuristic.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  const auto base = bench::base_config(cli, 200);
  bench::banner("Table (in-text): second-phase policy vs FCFS ready-set scheduling", base);

  const std::vector<std::pair<std::string, std::string>> pairs{
      {"minmin", "minmin-fcfs"},
      {"maxmin", "maxmin-fcfs"},
      {"sufferage", "sufferage-fcfs"},
      {"dheft", "dheft-fcfs"},
      {"dsmf", "dsmf-fcfs"},
  };
  std::vector<exp::ExperimentConfig> configs;
  for (const auto& [with, without] : pairs) {
    exp::ExperimentConfig a = base;
    a.algorithm = with;
    configs.push_back(a);
    exp::ExperimentConfig b = base;
    b.algorithm = without;
    configs.push_back(b);
  }
  std::fprintf(stderr, "running %zu configurations...\n", configs.size());
  const auto results = exp::run_sweep(configs);

  util::TablePrinter t({"heuristic", "ACT w/ 2nd phase", "ACT w/ FCFS", "improvement %",
                        "AE w/ 2nd phase", "AE w/ FCFS"});
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& with = results[2 * i];
    const auto& without = results[2 * i + 1];
    const double gain =
        without.act > 0 ? (without.act - with.act) / without.act * 100.0 : 0.0;
    t.add_row({pairs[i].first, util::TablePrinter::fmt(with.act, 6),
               util::TablePrinter::fmt(without.act, 6), util::TablePrinter::fmt(gain, 3),
               util::TablePrinter::fmt(with.ae, 4), util::TablePrinter::fmt(without.ae, 4)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: the dedicated second phase beats FCFS for every heuristic"
               " (paper: 'FCFS is not suggested to take over the ready task scheduling').\n";
  return 0;
}
