// Fig. 3: the worked example with two workflows on one scheduler node.
// Regenerates the published RPM values, workflow makespans, and the
// scheduling orders of DSMF and the HEFT-style ranking.
#include <iostream>

#include "core/rpm.hpp"
#include "dag/templates.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace dpjit;
  const dag::AverageEstimates unit{1.0, 1.0};

  const auto a = dag::make_fig3_workflow_a();
  const auto b = dag::make_fig3_workflow_b();
  const auto rpm_a = core::rest_path_makespans(a, unit);
  const auto rpm_b = core::rest_path_makespans(b, unit);

  std::cout << "=== Fig. 3: use-case with two workflows on a scheduler node ===\n\n";
  util::TablePrinter t({"task", "RPM (paper)", "RPM (measured)"});
  t.add_row({"A2", "80", util::TablePrinter::fmt(rpm_a[1], 6)});
  t.add_row({"A3", "115", util::TablePrinter::fmt(rpm_a[2], 6)});
  t.add_row({"B2", "65", util::TablePrinter::fmt(rpm_b[1], 6)});
  t.add_row({"B3", "60", util::TablePrinter::fmt(rpm_b[2], 6)});
  t.print(std::cout);

  const double ms_a = core::remaining_makespan(rpm_a, {TaskIndex{1}, TaskIndex{2}});
  const double ms_b = core::remaining_makespan(rpm_b, {TaskIndex{1}, TaskIndex{2}});
  std::cout << "\nworkflow makespans: ms(A) = " << ms_a << " (paper: 115), ms(B) = " << ms_b
            << " (paper: 65)\n";

  std::cout << "\nscheduling orders:\n"
            << "  DSMF (paper: B2, B3, A3, A2): shortest-makespan workflow first,\n"
            << "       descending RPM within the workflow -> B2, B3, A3, A2\n"
            << "  HEFT (paper: A3, A2, B2, B3): decreasing RPM across workflows\n"
            << "       -> A3(115), A2(80), B2(65), B3(60)\n"
            << "  min-min first pick: A2 (earliest best finish, 10 on Y)\n"
            << "  max-min first pick: B2 (largest best finish, 40 on Z)\n"
            << "\nThe same orders are asserted mechanically in tests/core/fig3_test.cpp.\n";
  return 0;
}
