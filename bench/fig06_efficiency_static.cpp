// Fig. 6: average workflow execution efficiency (running AE, Eq. 3) over
// time for the eight algorithms, static environment.
//
// Expected shape: SMF highest, DSMF second (paper: 37.5-90% AE improvement
// over the other decentralized algorithms).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  const auto base = bench::scenario_config(cli, "paper/static-n200");
  bench::banner("Fig. 6: average efficiency of workflows, static P2P grid", base);

  const auto results = bench::run_all_algorithms(base);
  exp::print_time_series(std::cout, results, "ae");
  std::cout << "\nconverged summary:\n";
  exp::print_summary_table(std::cout, results);
  bench::print_dsmf_gains(results);
  return 0;
}
