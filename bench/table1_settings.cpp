// Table I: the experimental setting. Prints the encoded defaults so the
// reader can check them against the paper line by line.
#include <iostream>

#include "bench_common.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  exp::ExperimentConfig cfg = bench::base_config(cli, 1000);

  std::cout << "=== Table I: experimental setting (paper vs encoded defaults) ===\n\n";
  util::TablePrinter t({"parameter", "paper", "this repo"});
  t.add_row({"# of nodes", "200 ~ 2000", "ExperimentConfig::nodes (default 1000)"});
  t.add_row({"# of tasks per workflow", "2 ~ 30",
             std::to_string(cfg.workflow.min_tasks) + " ~ " + std::to_string(cfg.workflow.max_tasks)});
  t.add_row({"computing amount per task (MI)", "100 ~ 10000",
             util::TablePrinter::fmt(cfg.workflow.min_load_mi, 6) + " ~ " +
                 util::TablePrinter::fmt(cfg.workflow.max_load_mi, 6)});
  t.add_row({"image size per task (Mb)", "10 ~ 100",
             util::TablePrinter::fmt(cfg.workflow.min_image_mb, 6) + " ~ " +
                 util::TablePrinter::fmt(cfg.workflow.max_image_mb, 6)});
  t.add_row({"dependent data size (Mb)", "100 ~ 10000 (default figs: 10 ~ 1000)",
             util::TablePrinter::fmt(cfg.workflow.min_data_mb, 6) + " ~ " +
                 util::TablePrinter::fmt(cfg.workflow.max_data_mb, 6)});
  t.add_row({"network bandwidth (Mb/s)", "0.1 ~ 10",
             util::TablePrinter::fmt(cfg.topology.min_bandwidth_mbps, 6) + " ~ " +
                 util::TablePrinter::fmt(cfg.topology.max_bandwidth_mbps, 6)});
  t.add_row({"node capacity (MIPS)", "1,2,4,8,16", "capacity_choices = {1,2,4,8,16}"});
  t.add_row({"fan-out degree per task", "1 ~ 5",
             std::to_string(cfg.workflow.min_fanout) + " ~ " + std::to_string(cfg.workflow.max_fanout)});
  t.add_row({"total experimental time", "36 hours",
             util::TablePrinter::fmt(cfg.system.horizon_s / 3600.0, 4) + " hours"});
  t.add_row({"scheduling interval", "15 minutes",
             util::TablePrinter::fmt(cfg.system.scheduling_interval_s / 60.0, 4) + " minutes"});
  t.add_row({"gossip cycle", "5 minutes",
             util::TablePrinter::fmt(cfg.system.gossip.cycle_s / 60.0, 4) + " minutes"});
  t.add_row({"gossip TTL (hops)", "4", std::to_string(cfg.system.gossip.ttl)});
  t.add_row({"gossip fan-out", "log2(n)", "log2(n) (derived)"});
  t.print(std::cout);

  std::cout << "\nCCR sanity (Section IV.A says the default case is ~0.16):\n";
  const double avg_exec = 0.5 * (cfg.workflow.min_load_mi + cfg.workflow.max_load_mi) / 6.2;
  const double avg_xfer = 0.5 * (cfg.workflow.min_data_mb + cfg.workflow.max_data_mb) / 5.05;
  std::cout << "  mean task execution  ~ " << avg_exec << " s (avg capacity 6.2 MIPS)\n"
            << "  mean data transfer   ~ " << avg_xfer << " s (avg bandwidth 5.05 Mb/s)\n"
            << "  CCR ~ " << avg_xfer / avg_exec << "\n";
  return 0;
}
