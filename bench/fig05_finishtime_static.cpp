// Fig. 5: average workflow finish-time (running ACT, Eq. 2) over time for
// the eight algorithms, static environment.
//
// Expected shape: SMF lowest, DSMF second and the best among the
// decentralized algorithms (the paper quotes 20-60% ACT reduction for DSMF
// vs the other decentralized heuristics and full-ahead HEFT).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  const auto base = bench::scenario_config(cli, "paper/static-n200");
  bench::banner("Fig. 5: average finish-time of workflows, static P2P grid", base);

  const auto results = bench::run_all_algorithms(base);
  exp::print_time_series(std::cout, results, "act");
  std::cout << "\nconverged summary:\n";
  exp::print_summary_table(std::cout, results);
  bench::print_dsmf_gains(results);
  return 0;
}
