// Fig. 10: average efficiency under the four CCR cases of Fig. 9.
#include "bench_common.hpp"

namespace {
// Same registered ccr/* scenarios and row labels as fig09.
struct CcrCase {
  const char* scenario;
  const char* label;
};
constexpr CcrCase kCases[] = {
    {"ccr/balanced-light", "load:10-1000/data:10-1000"},
    {"ccr/data-heavy", "load:10-1000/data:100-10000"},
    {"ccr/compute-heavy", "load:100-10000/data:10-1000"},
    {"ccr/balanced-heavy", "load:100-10000/data:100-10000"},
};
}  // namespace

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  auto base = bench::scenario_config(cli, "paper/static-n1000", /*bench_scale_nodes=*/150);
  bench::banner("Fig. 10: average efficiency under different CCRs", base);

  std::vector<exp::ExperimentConfig> configs;
  for (const auto& c : kCases) {
    const auto cfg = exp::scenario_registry().at(c.scenario).apply(base);
    for (auto& one : exp::across_algorithms(cfg)) configs.push_back(one);
  }
  const int seeds = static_cast<int>(cli.get_int("seeds", 1));
  std::fprintf(stderr, "running %zu configurations x %d seed(s)...\n", configs.size(), seeds);
  const auto results = bench::run_seed_averaged(configs, seeds);

  const auto algos = core::paper_algorithms();
  std::vector<std::string> x_values;
  for (const auto& c : kCases) x_values.emplace_back(c.label);
  std::vector<std::vector<double>> ae(algos.size());
  for (std::size_t i = 0; i < results.size(); ++i) ae[i % algos.size()].push_back(results[i].ae);
  exp::print_sweep_table(std::cout, "ccr_case", x_values, algos, ae);
  return 0;
}
