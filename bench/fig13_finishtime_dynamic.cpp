// Fig. 13: DSMF average finish-time in the dynamic environment.
//
// Expected shape: finished workflows keep a relatively stable ACT for
// df <= 0.2 (the paper's headline robustness claim).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  auto base = bench::scenario_config(cli, "paper/static-n1000", /*bench_scale_nodes=*/200);
  base.algorithm = cli.get_string("algorithm", "dsmf");
  base.reschedule = cli.get_bool("reschedule", false);
  base.system.home_keeps_outputs = !cli.get_bool("no-result-collection", false);
  bench::banner("Fig. 13: average finish-time of DSMF in dynamic environment", base);

  // df = 0 is the static base; the dynamic factors come from the registered
  // paper/dynamic-* scenarios applied to the same base.
  std::vector<exp::ExperimentConfig> configs;
  std::vector<std::string> labels;
  configs.push_back(base);
  labels.push_back("df=" + util::TablePrinter::fmt(0.0, 2));
  for (const auto* scenario : exp::scenario_registry().family("paper/dynamic-")) {
    const auto cfg = scenario->apply(base);
    configs.push_back(cfg);
    labels.push_back("df=" + util::TablePrinter::fmt(cfg.dynamic_factor, 2));
  }
  std::fprintf(stderr, "running %zu dynamic factors...\n", configs.size());
  const auto results = exp::run_sweep(configs);

  exp::print_time_series(std::cout, results, "act", labels);
  std::cout << "\nsummary:\n";
  exp::print_summary_table(std::cout, results);
  return 0;
}
