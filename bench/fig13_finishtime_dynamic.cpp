// Fig. 13: DSMF average finish-time in the dynamic environment.
//
// Expected shape: finished workflows keep a relatively stable ACT for
// df <= 0.2 (the paper's headline robustness claim).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  auto base = bench::base_config(cli, 200);
  base.algorithm = cli.get_string("algorithm", "dsmf");
  base.reschedule = cli.get_bool("reschedule", false);
  base.system.home_keeps_outputs = !cli.get_bool("no-result-collection", false);
  bench::banner("Fig. 13: average finish-time of DSMF in dynamic environment", base);

  std::vector<exp::ExperimentConfig> configs;
  std::vector<std::string> labels;
  for (double df : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    exp::ExperimentConfig cfg = base;
    cfg.dynamic_factor = df;
    configs.push_back(cfg);
    labels.push_back("df=" + util::TablePrinter::fmt(df, 2));
  }
  std::fprintf(stderr, "running %zu dynamic factors...\n", configs.size());
  const auto results = exp::run_sweep(configs);

  exp::print_time_series(std::cout, results, "act", labels);
  std::cout << "\nsummary:\n";
  exp::print_summary_table(std::cout, results);
  return 0;
}
