// Ablation (this repo): the paper's uncontended bottleneck network model vs
// max-min fair link sharing. Checks that the scheduling comparison (DSMF vs
// DHEFT vs min-min) is robust to the network model choice - i.e. who wins
// does not depend on ignoring contention.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  auto base = bench::base_config(cli, 64);
  base.workflows_per_node = static_cast<int>(cli.get_int("workflows", 2));
  bench::banner("Ablation: bottleneck vs max-min-fair network model", base);

  std::vector<exp::ExperimentConfig> configs;
  std::vector<std::string> labels;
  for (const char* algo : {"dsmf", "dheft", "minmin"}) {
    for (bool fair : {false, true}) {
      exp::ExperimentConfig cfg = base;
      cfg.algorithm = algo;
      cfg.fair_sharing = fair;
      configs.push_back(cfg);
      labels.push_back(std::string(algo) + (fair ? "+fair" : "+bottleneck"));
    }
  }
  std::fprintf(stderr, "running %zu configurations...\n", configs.size());
  const auto results = exp::run_sweep(configs);

  util::TablePrinter t({"configuration", "ACT(s)", "AE", "finished"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    t.add_row({labels[i], util::TablePrinter::fmt(results[i].act, 6),
               util::TablePrinter::fmt(results[i].ae, 4),
               std::to_string(results[i].workflows_finished)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: fair sharing inflates transfer times (ACT up, AE down)"
               " but preserves the algorithm ranking.\n";
  return 0;
}
