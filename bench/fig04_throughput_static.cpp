// Fig. 4: throughput (cumulative workflows finished) over 36 hours for the
// eight algorithms in the static environment.
//
// Expected shape (paper Section IV.B): SMF finishes workflows fastest
// throughout, DSMF is second; HEFT and DHEFT show the lowest early throughput
// but eventually complete everything.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  const auto base = bench::scenario_config(cli, "paper/static-n200");
  bench::banner("Fig. 4: throughput of workflows, static P2P grid", base);

  const auto results = bench::run_all_algorithms(base);
  exp::print_time_series(std::cout, results, "throughput");
  std::cout << "\nconverged summary:\n";
  exp::print_summary_table(std::cout, results);
  return 0;
}
