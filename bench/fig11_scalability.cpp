// Fig. 11: system scalability of DSMF.
//  (a) mean number of resource nodes known per node (RSS size) - bounded
//      below ~30 even as n grows (the gossip cache does its job);
//  (b) average efficiency vs scale - roughly flat;
//  (c) average finish-time vs scale - roughly flat.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  auto base = bench::scenario_config(cli, "paper/static-n1000", /*bench_scale_nodes=*/100);
  bench::banner("Fig. 11: system scalability of DSMF", base);
  base.algorithm = cli.get_string("algorithm", "dsmf");

  std::vector<int> scales;
  if (cli.get_bool("paper", false)) {
    scales = {100, 200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000};
  } else {
    scales = {100, 200, 400, 600, 800};
  }

  std::vector<exp::ExperimentConfig> configs;
  for (int n : scales) {
    exp::ExperimentConfig cfg = base;
    cfg.nodes = n;
    configs.push_back(cfg);
  }
  std::fprintf(stderr, "running %zu scales...\n", configs.size());
  const auto results = exp::run_sweep(configs);

  util::TablePrinter t({"n", "mean RSS size (a)", "idle known (a)", "AE (b)", "ACT (c)",
                        "finished", "gossip msgs", "KB/node/cycle"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    // Traffic per node per gossip cycle, to compare with the paper's ~2 KB
    // estimate (Section IV.A) for fan-out log2(n) x ~100-byte messages.
    const double cycles = base.system.horizon_s / base.system.gossip.cycle_s;
    const double kb_per_node_cycle =
        static_cast<double>(r.gossip_bytes) / 1024.0 / cycles / scales[i];
    t.add_row({std::to_string(scales[i]), util::TablePrinter::fmt(r.converged_rss_size, 4),
               util::TablePrinter::fmt(r.converged_idle_known, 4),
               util::TablePrinter::fmt(r.ae, 4), util::TablePrinter::fmt(r.act, 6),
               std::to_string(r.workflows_finished), std::to_string(r.gossip_messages),
               util::TablePrinter::fmt(kb_per_node_cycle, 3)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: RSS size grows ~log(n) and stays < 30; AE and ACT stay"
               " roughly flat with scale (fully decentralized design); per-node gossip"
               " traffic stays in the low-KB range per cycle (paper estimates ~2 KB).\n";
  return 0;
}
