// Ablation (this repo): sensitivity of DSMF to the mixed gossip protocol's
// design knobs - RSS cache size, epidemic TTL, and gossip cycle length.
// DESIGN.md calls these out as the parameters behind Fig. 11(a)'s bounded
// view size; this bench shows how they trade scheduling quality (ACT/AE)
// against view freshness.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  auto base = bench::base_config(cli, 150);
  base.algorithm = "dsmf";
  bench::banner("Ablation: gossip cache size / TTL / cycle length (DSMF)", base);

  struct Case {
    std::string label;
    int cache;
    int ttl;
    double cycle;
  };
  std::vector<Case> cases{
      {"default(cache=auto,ttl=4,300s)", 0, 4, 300.0},
      {"tiny-cache(8)", 8, 4, 300.0},
      {"huge-cache(64)", 64, 4, 300.0},
      {"ttl=1", 0, 1, 300.0},
      {"ttl=8", 0, 8, 300.0},
      {"slow-gossip(900s)", 0, 4, 900.0},
      {"fast-gossip(60s)", 0, 4, 60.0},
  };

  std::vector<exp::ExperimentConfig> configs;
  for (const auto& c : cases) {
    exp::ExperimentConfig cfg = base;
    cfg.system.gossip.cache_size = c.cache;
    cfg.system.gossip.ttl = c.ttl;
    cfg.system.gossip.cycle_s = c.cycle;
    configs.push_back(cfg);
  }
  std::fprintf(stderr, "running %zu gossip configurations...\n", configs.size());
  const auto results = exp::run_sweep(configs);

  util::TablePrinter t({"configuration", "ACT(s)", "AE", "mean RSS", "idle known", "msgs"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    t.add_row({cases[i].label, util::TablePrinter::fmt(r.act, 6),
               util::TablePrinter::fmt(r.ae, 4), util::TablePrinter::fmt(r.converged_rss_size, 4),
               util::TablePrinter::fmt(r.converged_idle_known, 4),
               std::to_string(r.gossip_messages)});
  }
  t.print(std::cout);
  std::cout
      << "\nexpected shape: small bounded views WIN - with a large cache every home\n"
         "sees (and piles onto) the same globally-best nodes, recreating the hotspot\n"
         "problem the paper's Section III.D warns about; the bounded random RSS\n"
         "spreads load. Faster cycles buy fresher load info at higher message cost.\n";
  return 0;
}
