// Fig. 8: average efficiency under load factor 1..8, all eight algorithms.
//
// Expected shape: AE decreases with load; SMF/DSMF stay on top.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  auto base = bench::scenario_config(cli, "paper/static-n1000", /*bench_scale_nodes=*/100);
  bench::banner("Fig. 8: average efficiency vs load factor", base);

  const int max_lf = static_cast<int>(cli.get_int("max-load-factor", 8));
  std::vector<exp::ExperimentConfig> configs;
  for (int lf = 1; lf <= max_lf; ++lf) {
    exp::ExperimentConfig cfg = base;
    cfg.workflows_per_node = lf;
    for (auto& c : exp::across_algorithms(cfg)) configs.push_back(c);
  }
  const int seeds = static_cast<int>(cli.get_int("seeds", 1));
  std::fprintf(stderr, "running %zu configurations x %d seed(s)...\n", configs.size(), seeds);
  const auto results = bench::run_seed_averaged(configs, seeds);

  const auto algos = core::paper_algorithms();
  std::vector<std::string> x_values;
  std::vector<std::vector<double>> ae(algos.size());
  for (int lf = 1; lf <= max_lf; ++lf) x_values.push_back(std::to_string(lf));
  for (std::size_t i = 0; i < results.size(); ++i) {
    ae[i % algos.size()].push_back(results[i].ae);
  }
  exp::print_sweep_table(std::cout, "load_factor", x_values, algos, ae);
  return 0;
}
