// Performance-regression harness for the simulation hot path.
//
// Times three things and emits one JSON document (see BENCH_2.json for the
// recorded baseline-vs-current numbers):
//   1. EventQueue micro-ops (schedule/pop and schedule/cancel throughput),
//      both for the current sim::EventQueue and for a frozen copy of the
//      pre-overhaul implementation (std::priority_queue + unordered_map +
//      lazy tombstone cancel) kept here as the reference point, so the
//      speedup is always measured on the same machine in the same binary;
//   2. all-pairs Routing construction over a Waxman topology;
//   3. an end-to-end fig11-style run (one DSMF experiment at --nodes, full
//      36 h horizon) with a bitwise digest of the result metrics so perf
//      changes that perturb simulation output are caught immediately.
//
// Usage: perf_harness [--quick] [--nodes=500] [--ops=6000000] [--seed=1]
//                     [--out=PATH]       (default: print JSON to stdout)
#include <bit>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "exp/experiment.hpp"
#include "net/routing.hpp"
#include "sim/event_queue.hpp"
#include "util/config.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using dpjit::SimTime;

/// Frozen copy of the pre-overhaul EventQueue (binary-heap of (time, seq)
/// entries, unordered_map for liveness, lazy cancellation). Do not "fix" or
/// modernize this type: it exists so BENCH_*.json speedups stay reproducible.
class BaselineEventQueue {
 public:
  using Handle = std::uint64_t;
  using EventFn = std::function<void()>;

  Handle schedule(SimTime t, EventFn fn) {
    const Handle h = next_seq_++;
    heap_.push(Entry{t, h});
    live_.emplace(h, std::move(fn));
    return h;
  }

  bool cancel(Handle h) { return live_.erase(h) > 0; }

  [[nodiscard]] bool empty() const { return live_.empty(); }
  [[nodiscard]] std::size_t size() const { return live_.size(); }

  std::pair<SimTime, EventFn> pop() {
    skip_dead();
    const Entry top = heap_.top();
    heap_.pop();
    auto it = live_.find(top.seq);
    EventFn fn = std::move(it->second);
    live_.erase(it);
    return {top.time, std::move(fn)};
  }

 private:
  struct Entry {
    SimTime time;
    Handle seq;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void skip_dead() {
    while (!heap_.empty() && live_.find(heap_.top().seq) == live_.end()) heap_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<Handle, EventFn> live_;
  Handle next_seq_ = 0;
};

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Deterministic pseudo-random event times (no util::Rng dependency so the
/// micro-loop stays allocation- and call-free apart from the queue op itself).
struct TimeGen {
  std::uint64_t s = 0x9e3779b97f4a7c15ULL;
  double base = 0.0;
  SimTime next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    // Events land within a 1000 s lookahead window past the current base.
    return base + static_cast<double>(s % 100000U) / 100.0;
  }
};

/// Rolling schedule/pop: fill a window, then pop-one/schedule-one. This is
/// the engine's steady-state pattern. Returns mega-ops (1 op = one schedule
/// plus one pop) per second. `sink` defeats dead-code elimination.
template <class Queue>
double bench_schedule_pop(std::size_t ops, std::uint64_t& sink) {
  constexpr std::size_t kWindow = 4096;
  Queue q;
  TimeGen gen;
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < kWindow; ++i) q.schedule(gen.next(), [&fired] { ++fired; });
  const double t0 = now_s();
  for (std::size_t i = 0; i < ops; ++i) {
    auto [t, fn] = q.pop();
    gen.base = t;  // simulated clock only moves forward
    fn();
    q.schedule(gen.next(), [&fired] { ++fired; });
  }
  const double dt = now_s() - t0;
  while (!q.empty()) q.pop().second();
  sink += fired;
  return static_cast<double>(ops) / dt / 1e6;
}

/// The schedule/cancel/pop mix: the reschedule-churn pattern of the fair-
/// sharing transfer manager and churn aborts. A pool of "flows" each holds a
/// live far-future completion event; every iteration cancels one (always
/// live), reschedules it at a new far-future time, and schedules + pops one
/// near event to advance the frontier. Under lazy cancellation the far-future
/// tombstones never reach the heap top, so the dead set grows by one entry
/// per iteration - the exact pathology true removal fixes by construction.
/// The final drain is inside the timed region: lazy cancellation only defers
/// its removal work (every tombstone is heap-popped when the frontier passes
/// it), so the amortized cost per operation must charge for it.
/// Returns mega-iterations (1 schedule + 1 cancel + 1 reschedule + 1 pop)
/// per second.
template <class Queue>
double bench_schedule_cancel_pop(std::size_t ops, std::uint64_t& sink) {
  constexpr std::size_t kFlows = 4096;
  constexpr double kFarFuture = 1e7;  // beyond any time the frontier reaches
  Queue q;
  TimeGen gen;
  std::uint64_t fired = 0;
  std::vector<typename Queue::Handle> completion(kFlows);
  for (std::size_t i = 0; i < kFlows; ++i) {
    completion[i] = q.schedule(kFarFuture + gen.next(), [&fired] { ++fired; });
  }
  for (std::size_t i = 0; i < kFlows; ++i) q.schedule(gen.next(), [&fired] { ++fired; });
  std::size_t flow = 0;
  const double t0 = now_s();
  for (std::size_t i = 0; i < ops; ++i) {
    if (!q.cancel(completion[flow])) return -1.0;  // must be live by design
    completion[flow] = q.schedule(kFarFuture + gen.next(), [&fired] { ++fired; });
    flow = (flow + 1) % kFlows;
    q.schedule(gen.next(), [&fired] { ++fired; });
    auto [t, fn] = q.pop();
    gen.base = t;
    fn();
  }
  while (!q.empty()) q.pop().second();
  const double dt = now_s() - t0;
  sink += fired;
  return static_cast<double>(ops) / dt / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const auto ops = static_cast<std::size_t>(cli.get_int("ops", quick ? 500000 : 6000000));
  const int nodes = static_cast<int>(cli.get_int("nodes", quick ? 100 : 500));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string out_path = cli.get_string("out", "-");

  std::uint64_t sink = 0;

  // --- 1. EventQueue micro-ops (median of 3 runs each) ----------------------
  auto median3 = [](double a, double b, double c) {
    return std::max(std::min(a, b), std::min(std::max(a, b), c));
  };
  std::fprintf(stderr, "[1/3] event-queue micro-ops (%zu ops/run)...\n", ops);
  double base_sp[3], cur_sp[3], base_sc[3], cur_sc[3];
  for (int r = 0; r < 3; ++r) {
    base_sp[r] = bench_schedule_pop<BaselineEventQueue>(ops, sink);
    cur_sp[r] = bench_schedule_pop<sim::EventQueue>(ops, sink);
    base_sc[r] = bench_schedule_cancel_pop<BaselineEventQueue>(ops, sink);
    cur_sc[r] = bench_schedule_cancel_pop<sim::EventQueue>(ops, sink);
  }
  const double baseline_pop = median3(base_sp[0], base_sp[1], base_sp[2]);
  const double current_pop = median3(cur_sp[0], cur_sp[1], cur_sp[2]);
  const double baseline_cancel = median3(base_sc[0], base_sc[1], base_sc[2]);
  const double current_cancel = median3(cur_sc[0], cur_sc[1], cur_sc[2]);

  // --- 2. Routing construction ---------------------------------------------
  std::fprintf(stderr, "[2/3] routing build (n=%d)...\n", nodes);
  util::Rng topo_rng(seed);
  net::TopologyParams tp;
  tp.node_count = nodes;
  const auto topo = net::Topology::generate_waxman(tp, topo_rng);
  double routing_ms = 0.0;
  double routing_mean_bw = 0.0;
  {
    const int reps = quick ? 2 : 3;
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const double t0 = now_s();
      net::Routing routing(topo);
      const double dt = (now_s() - t0) * 1e3;
      best = std::min(best, dt);
      routing_mean_bw = routing.mean_pair_bandwidth_mbps();
    }
    routing_ms = best;
  }

  // --- 3. End-to-end fig11-style run ---------------------------------------
  std::fprintf(stderr, "[3/3] end-to-end dsmf run (n=%d, 36 h horizon)...\n", nodes);
  exp::ExperimentConfig cfg;
  cfg.algorithm = "dsmf";
  cfg.nodes = nodes;
  cfg.seed = seed;
  const double e2e_t0 = now_s();
  const auto result = exp::run_experiment(cfg);
  const double e2e_wall = now_s() - e2e_t0;

  // --- emit ----------------------------------------------------------------
  std::ostringstream json;
  {
    util::JsonWriter w(json);
    w.begin_object();
    w.kv("schema", "dpjit-perf-harness-v1");
    w.kv("quick", quick);
    w.key("event_queue").begin_object();
    w.kv("ops", static_cast<std::uint64_t>(ops));
    w.kv("baseline_schedule_pop_mops", baseline_pop);
    w.kv("current_schedule_pop_mops", current_pop);
    w.kv("schedule_pop_speedup", current_pop / baseline_pop);
    w.kv("baseline_schedule_cancel_pop_mops", baseline_cancel);
    w.kv("current_schedule_cancel_pop_mops", current_cancel);
    w.kv("schedule_cancel_pop_speedup", current_cancel / baseline_cancel);
    w.end_object();
    w.key("routing").begin_object();
    w.kv("nodes", static_cast<std::int64_t>(nodes));
    w.kv("build_ms", routing_ms);
    w.kv("mean_pair_bandwidth_mbps", routing_mean_bw);
    w.end_object();
    w.key("end_to_end").begin_object();
    w.kv("nodes", static_cast<std::int64_t>(nodes));
    w.kv("algorithm", "dsmf");
    w.kv("seed", seed);
    w.kv("wall_s", e2e_wall);
    w.kv("events", result.events_processed);
    w.kv("events_per_s", static_cast<double>(result.events_processed) / e2e_wall);
    w.kv("workflows_finished", static_cast<std::uint64_t>(result.workflows_finished));
    w.kv("act", result.act);
    w.kv("ae", result.ae);
    w.kv("result_digest", exp::result_digest(result));
    w.end_object();
    w.end_object();
  }
  json << "\n";

  if (out_path == "-") {
    std::cout << json.str();
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "perf_harness: cannot open " << out_path << " for writing\n";
      return 1;
    }
    out << json.str();
    std::cout << "wrote " << out_path << "\n";
  }
  // Human-readable summary on stderr so CI logs show the numbers inline.
  std::fprintf(stderr,
               "schedule/pop  %.2f -> %.2f Mops/s (%.2fx)\n"
               "schedule/cancel/pop %.2f -> %.2f Mops/s (%.2fx)\n"
               "routing build n=%d: %.1f ms\n"
               "end-to-end n=%d: %.2f s wall, %llu events (%.0f events/s)\n",
               baseline_pop, current_pop, current_pop / baseline_pop, baseline_cancel,
               current_cancel, current_cancel / baseline_cancel, nodes, routing_ms, nodes, e2e_wall,
               static_cast<unsigned long long>(result.events_processed),
               static_cast<double>(result.events_processed) / e2e_wall);
  return sink == 0xdeadbeef ? 2 : 0;
}
