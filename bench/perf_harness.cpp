// Performance-regression harness for the simulation hot path.
//
// Times nine things and emits one JSON document (see BENCH_*.json for the
// recorded baseline-vs-current numbers):
//   1. EventQueue micro-ops (schedule/pop and schedule/cancel throughput),
//      both for the current sim::EventQueue and for a frozen copy of the
//      pre-overhaul implementation (std::priority_queue + unordered_map +
//      lazy tombstone cancel) kept here as the reference point, so the
//      speedup is always measured on the same machine in the same binary;
//   2. all-pairs Routing construction over a Waxman topology;
//   3. transfer-heavy fair-sharing benchmarks: a steady-state churn of 1k
//      concurrent fluid flows and a mass node teardown, both for the current
//      incremental grid::TransferManager and for a frozen copy of the pre-
//      overhaul full-recompute fair path (one O(flows x links) max-min solve
//      per flow event, one solve per doomed flow on teardown);
//   4. next-completion arming: steady fluid churn over 512 disjoint pair
//      components (solver work O(1) per event), timed for the current
//      CompletionIndex-armed TransferManager and for a frozen copy of the
//      PR-4 path whose arming was an O(active) minimum-scan per mutation;
//   5. an end-to-end fig11-style run (one DSMF experiment at --nodes, full
//      36 h horizon) with a bitwise digest of the result metrics so perf
//      changes that perturb simulation output are caught immediately;
//   6. the sharded PDES engine: one event-dense scale-model run serial
//      (shards=1) and one sharded (shards=4, pool threads at hardware
//      concurrency). The two digests must be identical - a divergence is a
//      hard failure, not a perf number - and the serial/sharded wall-clock
//      ratio is recorded as sharded_speedup (~1.0 on single-core runners,
//      >1 where the worker pool has cores to use);
//   7. the quantised workflow path: the SAME end-to-end experiment as (5) on
//      the epoch-quantised network mode, once serial (shards=1) and once on
//      the epoch-barrier driver at shards=4 with a 2-thread pool. Digests
//      must be identical - the classic path's shard-determinism guarantee -
//      and the wall-clock ratio is recorded as workflow_shard.sharded_speedup
//      (~1.0 on single-core runners: only the ledger drives parallelize, the
//      world shard stays the critical path);
//   8. oracle probe cost: what-if rate queries against a frozen fluid flow
//      set (the scheduling-cycle regime), three paths: reference (the legacy
//      from-scratch progressive fill every probe used to run), uncached (the
//      solver's recorded-schedule replay, no pair cache), and cached (the
//      TransferManager's epoch-keyed probe cache on top). All three answers
//      are asserted bit-identical before timing; probe_cache_speedup is the
//      cached-vs-reference ratio - the full cost drop a scheduling cycle saw;
//   9. the heavy-traffic open stream (trace/open-stream-1m: 125k fitted jobs,
//      >= 1M submitted tasks) run twice, once with the O(1)-memory streaming
//      metrics collector and once retaining every report. The two result
//      digests must be identical (the collector-equivalence contract), the
//      streaming run's live report count must stay within the reservoir
//      bound, and the wall-clock ratio is recorded as
//      streaming_metrics.tasks_per_s_ratio (~1.0: the collector must not tax
//      the hot path).
//
// Usage: perf_harness [--quick] [--nodes=500] [--ops=6000000] [--seed=1]
//                     [--tflows=1000] [--tcomps=600] [--acomps=10000]
//                     [--out=PATH]       (default: print JSON to stdout)
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/metrics.hpp"
#include "exp/scale_model.hpp"
#include "exp/scenario.hpp"
#include "grid/transfer_manager.hpp"
#include "net/network_model.hpp"
#include "net/routing.hpp"
#include "sim/event_queue.hpp"
#include "util/config.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using dpjit::SimTime;

/// Frozen copy of the pre-overhaul EventQueue (binary-heap of (time, seq)
/// entries, unordered_map for liveness, lazy cancellation). Do not "fix" or
/// modernize this type: it exists so BENCH_*.json speedups stay reproducible.
class BaselineEventQueue {
 public:
  using Handle = std::uint64_t;
  using EventFn = std::function<void()>;

  Handle schedule(SimTime t, EventFn fn) {
    const Handle h = next_seq_++;
    heap_.push(Entry{t, h});
    live_.emplace(h, std::move(fn));
    return h;
  }

  bool cancel(Handle h) { return live_.erase(h) > 0; }

  [[nodiscard]] bool empty() const { return live_.empty(); }
  [[nodiscard]] std::size_t size() const { return live_.size(); }

  std::pair<SimTime, EventFn> pop() {
    skip_dead();
    const Entry top = heap_.top();
    heap_.pop();
    auto it = live_.find(top.seq);
    EventFn fn = std::move(it->second);
    live_.erase(it);
    return {top.time, std::move(fn)};
  }

 private:
  struct Entry {
    SimTime time;
    Handle seq;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void skip_dead() {
    while (!heap_.empty() && live_.find(heap_.top().seq) == live_.end()) heap_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<Handle, EventFn> live_;
  Handle next_seq_ = 0;
};

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Deterministic pseudo-random event times (no util::Rng dependency so the
/// micro-loop stays allocation- and call-free apart from the queue op itself).
struct TimeGen {
  std::uint64_t s = 0x9e3779b97f4a7c15ULL;
  double base = 0.0;
  SimTime next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    // Events land within a 1000 s lookahead window past the current base.
    return base + static_cast<double>(s % 100000U) / 100.0;
  }
};

/// Rolling schedule/pop: fill a window, then pop-one/schedule-one. This is
/// the engine's steady-state pattern. Returns mega-ops (1 op = one schedule
/// plus one pop) per second. `sink` defeats dead-code elimination.
template <class Queue>
double bench_schedule_pop(std::size_t ops, std::uint64_t& sink) {
  constexpr std::size_t kWindow = 4096;
  Queue q;
  TimeGen gen;
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < kWindow; ++i) q.schedule(gen.next(), [&fired] { ++fired; });
  const double t0 = now_s();
  for (std::size_t i = 0; i < ops; ++i) {
    auto [t, fn] = q.pop();
    gen.base = t;  // simulated clock only moves forward
    fn();
    q.schedule(gen.next(), [&fired] { ++fired; });
  }
  const double dt = now_s() - t0;
  while (!q.empty()) q.pop().second();
  sink += fired;
  return static_cast<double>(ops) / dt / 1e6;
}

/// The schedule/cancel/pop mix: the reschedule-churn pattern of the fair-
/// sharing transfer manager and churn aborts. A pool of "flows" each holds a
/// live far-future completion event; every iteration cancels one (always
/// live), reschedules it at a new far-future time, and schedules + pops one
/// near event to advance the frontier. Under lazy cancellation the far-future
/// tombstones never reach the heap top, so the dead set grows by one entry
/// per iteration - the exact pathology true removal fixes by construction.
/// The final drain is inside the timed region: lazy cancellation only defers
/// its removal work (every tombstone is heap-popped when the frontier passes
/// it), so the amortized cost per operation must charge for it.
/// Returns mega-iterations (1 schedule + 1 cancel + 1 reschedule + 1 pop)
/// per second.
template <class Queue>
double bench_schedule_cancel_pop(std::size_t ops, std::uint64_t& sink) {
  constexpr std::size_t kFlows = 4096;
  constexpr double kFarFuture = 1e7;  // beyond any time the frontier reaches
  Queue q;
  TimeGen gen;
  std::uint64_t fired = 0;
  std::vector<typename Queue::Handle> completion(kFlows);
  for (std::size_t i = 0; i < kFlows; ++i) {
    completion[i] = q.schedule(kFarFuture + gen.next(), [&fired] { ++fired; });
  }
  for (std::size_t i = 0; i < kFlows; ++i) q.schedule(gen.next(), [&fired] { ++fired; });
  std::size_t flow = 0;
  const double t0 = now_s();
  for (std::size_t i = 0; i < ops; ++i) {
    if (!q.cancel(completion[flow])) return -1.0;  // must be live by design
    completion[flow] = q.schedule(kFarFuture + gen.next(), [&fired] { ++fired; });
    flow = (flow + 1) % kFlows;
    q.schedule(gen.next(), [&fired] { ++fired; });
    auto [t, fn] = q.pop();
    gen.base = t;
    fn();
  }
  while (!q.empty()) q.pop().second();
  const double dt = now_s() - t0;
  sink += fired;
  return static_cast<double>(ops) / dt / 1e6;
}

/// Frozen copy of the pre-overhaul fair-sharing transfer path: full
/// O(flows x links) max-min recompute (with the original order-dependent
/// freeze pass) on every flow start/finish, and one full solve per doomed
/// flow on node departure. Do not "fix" or modernize this type: it exists so
/// BENCH_*.json transfer speedups stay reproducible on any machine.
class BaselineFairManager {
 public:
  using CompletionFn = dpjit::sim::InlineFunction<void(bool)>;

  BaselineFairManager(dpjit::sim::Engine& engine, const dpjit::net::Topology& topo,
                      const dpjit::net::Routing& routing)
      : engine_(engine), topo_(topo), routing_(routing) {}

  std::uint64_t start(dpjit::NodeId src, dpjit::NodeId dst, double size_mb,
                      CompletionFn on_done) {
    const std::uint64_t id = next_id_++;
    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.size_mb = size_mb;
    flow.remaining_mb = size_mb;
    flow.on_done = std::move(on_done);
    flow.links = routing_.path_links(src, dst);
    flow.latency_pending = true;
    flows_.emplace(id, std::move(flow));
    flows_.at(id).event = engine_.schedule_in(routing_.latency_s(src, dst),
                                              [this, id] { fair_flow_started(id); });
    return id;
  }

  void node_left(dpjit::NodeId n) {
    std::vector<std::uint64_t> doomed;
    for (const auto& [id, flow] : flows_) {
      if (flow.src == n || flow.dst == n) doomed.push_back(id);
    }
    for (std::uint64_t id : doomed) finish(id, false);
  }

  [[nodiscard]] std::size_t active_count() const { return flows_.size(); }

 private:
  struct Flow {
    dpjit::NodeId src;
    dpjit::NodeId dst;
    double size_mb = 0.0;
    double remaining_mb = 0.0;
    double rate_mbps = 0.0;
    std::vector<dpjit::LinkId> links;
    CompletionFn on_done;
    dpjit::sim::EventQueue::Handle event = dpjit::sim::EventQueue::kInvalidHandle;
    bool latency_pending = false;
  };

  /// The original sequential-freeze solver (mutates remaining/active mid-
  /// round; order-dependent near ties - kept verbatim as the baseline).
  static std::vector<double> solve(const std::vector<dpjit::net::FlowPath>& flows,
                                   const std::vector<double>& caps) {
    const std::size_t nf = flows.size();
    std::vector<double> rate(nf, 0.0);
    std::vector<char> frozen(nf, 0);
    std::vector<double> remaining = caps;
    std::vector<int> active(caps.size(), 0);
    std::size_t unfrozen = 0;
    for (std::size_t f = 0; f < nf; ++f) {
      if (flows[f].links.empty()) {
        rate[f] = dpjit::kInf;
        frozen[f] = 1;
        continue;
      }
      ++unfrozen;
      for (dpjit::LinkId l : flows[f].links) ++active[static_cast<std::size_t>(l.get())];
    }
    while (unfrozen > 0) {
      double share = std::numeric_limits<double>::infinity();
      for (std::size_t l = 0; l < remaining.size(); ++l) {
        if (active[l] > 0) share = std::min(share, remaining[l] / active[l]);
      }
      if (!std::isfinite(share)) break;
      share = std::max(share, 0.0);
      bool froze_any = false;
      for (std::size_t f = 0; f < nf; ++f) {
        if (frozen[f]) continue;
        bool bottlenecked = false;
        for (dpjit::LinkId l : flows[f].links) {
          const auto li = static_cast<std::size_t>(l.get());
          if (remaining[li] / active[li] <= share * (1.0 + 1e-12)) {
            bottlenecked = true;
            break;
          }
        }
        if (!bottlenecked) continue;
        rate[f] = share;
        frozen[f] = 1;
        froze_any = true;
        --unfrozen;
        for (dpjit::LinkId l : flows[f].links) {
          const auto li = static_cast<std::size_t>(l.get());
          remaining[li] -= share;
          if (remaining[li] < 0.0) remaining[li] = 0.0;
          --active[li];
        }
      }
      if (!froze_any) break;
    }
    return rate;
  }

  void finish(std::uint64_t id, bool success) {
    auto it = flows_.find(id);
    if (it == flows_.end()) return;
    CompletionFn cb = std::move(it->second.on_done);
    const bool was_fluid = !it->second.latency_pending;
    engine_.cancel(it->second.event);
    flows_.erase(it);
    if (was_fluid) fair_recompute();
    if (cb) cb(success);
  }

  void fair_flow_started(std::uint64_t id) {
    auto it = flows_.find(id);
    if (it == flows_.end()) return;
    it->second.latency_pending = false;
    if (it->second.remaining_mb <= 1e-9) {
      finish(id, true);
      return;
    }
    fair_recompute();
  }

  void fair_advance_to_now() {
    const dpjit::SimTime now = engine_.now();
    const double dt = now - fair_clock_;
    if (dt > 0.0) {
      for (auto& [id, flow] : flows_) {
        if (flow.latency_pending) continue;
        flow.remaining_mb = std::max(0.0, flow.remaining_mb - flow.rate_mbps * dt);
      }
    }
    fair_clock_ = now;
  }

  void fair_recompute() {
    fair_advance_to_now();
    std::vector<std::uint64_t> done;
    for (auto& [id, flow] : flows_) {
      if (!flow.latency_pending && flow.remaining_mb <= 1e-9) done.push_back(id);
    }
    for (std::uint64_t id : done) finish(id, true);
    if (!done.empty()) return;
    std::vector<std::uint64_t> ids;
    std::vector<dpjit::net::FlowPath> paths;
    for (auto& [id, flow] : flows_) {
      if (flow.latency_pending) continue;
      ids.push_back(id);
      paths.push_back(dpjit::net::FlowPath{flow.links});
    }
    if (!ids.empty()) {
      std::vector<double> capacity;
      capacity.reserve(topo_.link_count());
      for (const auto& link : topo_.links()) capacity.push_back(link.bandwidth_mbps);
      const auto rates = solve(paths, capacity);
      for (std::size_t i = 0; i < ids.size(); ++i) flows_.at(ids[i]).rate_mbps = rates[i];
    }
    fair_schedule_next_completion();
  }

  void fair_schedule_next_completion() {
    if (fair_event_armed_) {
      engine_.cancel(fair_event_);
      fair_event_armed_ = false;
    }
    double soonest = dpjit::kInf;
    for (const auto& [id, flow] : flows_) {
      if (flow.latency_pending || flow.rate_mbps <= 0.0) continue;
      soonest = std::min(soonest, flow.remaining_mb / flow.rate_mbps);
    }
    if (!std::isfinite(soonest)) return;
    fair_event_ = engine_.schedule_in(soonest, [this] {
      fair_event_armed_ = false;
      fair_recompute();
    });
    fair_event_armed_ = true;
  }

  dpjit::sim::Engine& engine_;
  const dpjit::net::Topology& topo_;
  const dpjit::net::Routing& routing_;
  std::unordered_map<std::uint64_t, Flow> flows_;
  std::uint64_t next_id_ = 1;
  dpjit::sim::EventQueue::Handle fair_event_ = dpjit::sim::EventQueue::kInvalidHandle;
  bool fair_event_armed_ = false;
  dpjit::SimTime fair_clock_ = 0.0;
};

/// Thin adapter so both managers run under one benchmark driver.
struct CurrentFairManager : dpjit::grid::TransferManager {
  CurrentFairManager(dpjit::sim::Engine& engine, const dpjit::net::Topology& topo,
                     const dpjit::net::Routing& routing)
      : TransferManager(engine, topo, routing, Mode::kFluidFair) {}
};

/// Frozen copy of the PR-4 fair path's *arming* strategy: the incremental
/// per-component FairShareSolver (same as current), but the next-completion
/// event re-armed by the original O(active) scan over every fluid flow after
/// every mutation - the pass the PR-5 CompletionIndex replaces. Do not "fix"
/// or modernize this type: it exists so BENCH_*.json's
/// next_completion.arming_speedup stays reproducible on any machine.
class ScanArmFairManager {
 public:
  using CompletionFn = dpjit::sim::InlineFunction<void(bool)>;

  ScanArmFairManager(dpjit::sim::Engine& engine, const dpjit::net::Topology& topo,
                     const dpjit::net::Routing& routing)
      : engine_(engine), routing_(routing), solver_(link_caps(topo)) {}

  std::uint64_t start(dpjit::NodeId src, dpjit::NodeId dst, double size_mb,
                      CompletionFn on_done) {
    const std::uint64_t id = next_id_++;
    Flow flow;
    flow.size_mb = size_mb;
    flow.remaining_mb = size_mb;
    flow.links = routing_.path_links(src, dst);
    flow.on_done = std::move(on_done);
    flows_.emplace(id, std::move(flow));
    engine_.schedule_in(routing_.latency_s(src, dst), [this, id] { flow_started(id); });
    return id;
  }

  [[nodiscard]] std::size_t active_count() const { return flows_.size(); }

 private:
  struct Flow {
    double size_mb = 0.0;
    double remaining_mb = 0.0;
    double rate_mbps = 0.0;
    std::vector<dpjit::LinkId> links;
    CompletionFn on_done;
    bool fluid = false;
  };

  static std::vector<double> link_caps(const dpjit::net::Topology& topo) {
    std::vector<double> caps;
    caps.reserve(topo.link_count());
    for (const auto& link : topo.links()) caps.push_back(link.bandwidth_mbps);
    return caps;
  }

  void flow_started(std::uint64_t id) {
    auto it = flows_.find(id);
    if (it == flows_.end()) return;
    advance_to_now();
    it->second.fluid = true;
    solver_.add(id, it->second.links);
    apply_updated();
    schedule_next_scan();
  }

  void advance_to_now() {
    const dpjit::SimTime now = engine_.now();
    const double dt = now - clock_;
    if (dt > 0.0) {
      for (auto& [id, flow] : flows_) {
        if (!flow.fluid) continue;
        flow.remaining_mb = std::max(0.0, flow.remaining_mb - flow.rate_mbps * dt);
      }
    }
    clock_ = now;
  }

  void apply_updated() {
    for (const auto& u : solver_.updated()) {
      flows_.find(u.id)->second.rate_mbps = u.rate;
    }
  }

  void resolve_batch(const std::vector<std::uint64_t>& ids) {
    if (ids.empty()) return;
    advance_to_now();
    std::vector<std::uint64_t> fluid_ids;
    std::vector<CompletionFn> callbacks;
    for (const std::uint64_t id : ids) {
      auto it = flows_.find(id);
      fluid_ids.push_back(id);
      callbacks.push_back(std::move(it->second.on_done));
      flows_.erase(it);
    }
    solver_.remove_batch(fluid_ids);
    apply_updated();
    schedule_next_scan();
    for (auto& cb : callbacks) {
      if (cb) cb(true);
    }
  }

  /// The frozen arming pass: min remaining/rate over EVERY fluid flow.
  void schedule_next_scan() {
    if (armed_) {
      engine_.cancel(event_);
      armed_ = false;
    }
    double soonest = dpjit::kInf;
    for (const auto& [id, flow] : flows_) {
      if (!flow.fluid || flow.rate_mbps <= 0.0) continue;
      soonest = std::min(soonest, flow.remaining_mb / flow.rate_mbps);
    }
    if (!std::isfinite(soonest)) return;
    event_ = engine_.schedule_in(soonest, [this] {
      armed_ = false;
      tick();
    });
    armed_ = true;
  }

  void tick() {
    advance_to_now();
    std::vector<std::uint64_t> done;
    const dpjit::SimTime now = engine_.now();
    for (const auto& [id, flow] : flows_) {
      if (!flow.fluid) continue;
      if (flow.remaining_mb <= 1e-9 || now + flow.remaining_mb / flow.rate_mbps <= now) {
        done.push_back(id);
      }
    }
    std::sort(done.begin(), done.end());
    if (done.empty()) {
      schedule_next_scan();
      return;
    }
    resolve_batch(done);
  }

  dpjit::sim::Engine& engine_;
  const dpjit::net::Routing& routing_;
  std::unordered_map<std::uint64_t, Flow> flows_;
  dpjit::net::FairShareSolver solver_;
  std::uint64_t next_id_ = 1;
  dpjit::sim::EventQueue::Handle event_ = dpjit::sim::EventQueue::kInvalidHandle;
  bool armed_ = false;
  dpjit::SimTime clock_ = 0.0;
};

/// Steady-state fluid churn: `concurrent` flows stay in flight (every
/// completion immediately starts a replacement) until `target` completions.
/// Returns completions per wall-clock second, timed after a warm-up that gets
/// every initial flow past its latency phase.
template <class Manager>
double bench_fair_steady(const dpjit::net::Topology& topo, const dpjit::net::Routing& routing,
                         std::size_t concurrent, std::uint64_t target, std::uint64_t& sink) {
  using dpjit::NodeId;
  dpjit::sim::Engine engine;
  Manager tm(engine, topo, routing);
  dpjit::util::Rng rng(42);
  const int n = topo.node_count();
  std::uint64_t completed = 0;
  std::function<void()> spawn = [&] {
    const auto src = NodeId{static_cast<int>(rng.index(static_cast<std::size_t>(n)))};
    auto dst = NodeId{static_cast<int>(rng.index(static_cast<std::size_t>(n)))};
    if (dst == src) dst = NodeId{(src.get() + 1) % n};
    tm.start(src, dst, rng.uniform(5.0, 50.0), [&](bool) {
      ++completed;
      if (completed < target + concurrent) spawn();
    });
  };
  for (std::size_t i = 0; i < concurrent; ++i) spawn();
  engine.run_until(1.0);  // past every latency phase: the pool is fully fluid
  const double t0 = now_s();
  while (completed < target) {
    if (!engine.step()) break;
  }
  const double dt = now_s() - t0;
  sink += completed;
  return static_cast<double>(target) / dt;
}

/// Mass teardown: `hub_flows` flows touch one victim node (plus background
/// flows that survive); times node_left(victim). Returns milliseconds.
template <class Manager>
double bench_fair_teardown(const dpjit::net::Topology& topo, const dpjit::net::Routing& routing,
                           std::size_t hub_flows, std::size_t background, std::uint64_t& sink) {
  using dpjit::NodeId;
  dpjit::sim::Engine engine;
  Manager tm(engine, topo, routing);
  dpjit::util::Rng rng(43);
  const int n = topo.node_count();
  const NodeId victim{0};
  std::uint64_t aborted = 0;
  for (std::size_t i = 0; i < hub_flows; ++i) {
    auto dst = NodeId{static_cast<int>(rng.index(static_cast<std::size_t>(n)))};
    if (dst == victim) dst = NodeId{1};
    tm.start(victim, dst, rng.uniform(50.0, 500.0), [&](bool ok) { aborted += ok ? 0 : 1; });
  }
  for (std::size_t i = 0; i < background; ++i) {
    auto src = NodeId{1 + static_cast<int>(rng.index(static_cast<std::size_t>(n - 1)))};
    auto dst = NodeId{1 + static_cast<int>(rng.index(static_cast<std::size_t>(n - 1)))};
    if (dst == src) dst = NodeId{1 + (src.get() % (n - 1))};
    tm.start(src, dst, rng.uniform(50.0, 500.0), [&](bool) {});
  }
  engine.run_until(1.0);  // everything fluid
  const double t0 = now_s();
  tm.node_left(victim);
  const double dt = now_s() - t0;
  if (aborted != hub_flows) return -1.0;  // teardown must abort exactly the hub flows
  sink += aborted;
  return dt * 1e3;
}

/// Next-completion arming stress: the topology is `pairs` disjoint two-node
/// islands (one link each), so every component re-solve is O(1) and the
/// per-event cost is dominated by the fixed per-flow passes - which is
/// exactly where the frozen scan-arming manager pays an extra O(active)
/// minimum-scan per mutation and the CompletionIndex pays O(log active).
/// Steady churn: every completion starts a replacement on a random pair.
/// Returns completions per wall-clock second.
template <class Manager>
double bench_arming(const dpjit::net::Topology& topo, const dpjit::net::Routing& routing,
                    std::size_t concurrent, std::uint64_t target, std::uint64_t& sink) {
  using dpjit::NodeId;
  dpjit::sim::Engine engine;
  Manager tm(engine, topo, routing);
  dpjit::util::Rng rng(44);
  const int pairs = topo.node_count() / 2;
  std::uint64_t completed = 0;
  std::function<void()> spawn = [&] {
    const int p = static_cast<int>(rng.index(static_cast<std::size_t>(pairs)));
    tm.start(NodeId{2 * p}, NodeId{2 * p + 1}, rng.uniform(5.0, 50.0), [&](bool) {
      ++completed;
      if (completed < target + concurrent) spawn();
    });
  };
  for (std::size_t i = 0; i < concurrent; ++i) spawn();
  engine.run_until(1.0);  // past every latency phase
  const double t0 = now_s();
  while (completed < target) {
    if (!engine.step()) break;
  }
  const double dt = now_s() - t0;
  sink += completed;
  return static_cast<double>(target) / dt;
}

/// Stage-7 probe paths, slowest to fastest.
enum class ProbePath { kReference, kUncached, kCached };

/// One timed probe loop for stage 7: `probes` what-if rate queries round-robin
/// over a fixed pair pool against a frozen flow set, through the selected
/// oracle path. Returns probes per wall-clock second; rates fold into `acc`
/// so the optimizer cannot drop the calls.
template <ProbePath kPath>
double bench_probe(const dpjit::grid::TransferManager& tm,
                   const std::vector<std::pair<dpjit::NodeId, dpjit::NodeId>>& pool,
                   std::uint64_t probes, double& acc) {
  const double t0 = now_s();
  for (std::uint64_t i = 0; i < probes; ++i) {
    const auto& [src, dst] = pool[i % pool.size()];
    if constexpr (kPath == ProbePath::kReference) {
      acc += tm.predicted_rate_mbps_reference(src, dst);
    } else if constexpr (kPath == ProbePath::kUncached) {
      acc += tm.predicted_rate_mbps_uncached(src, dst);
    } else {
      acc += tm.predicted_rate_mbps(src, dst);
    }
  }
  const double dt = now_s() - t0;
  return static_cast<double>(probes) / dt;
}

/// The disjoint-pair WAN for bench_arming: nodes 2p and 2p+1 joined by one
/// 5-10 Mb/s link, no inter-pair connectivity.
dpjit::net::Topology disjoint_pairs_topology(int pairs) {
  std::vector<dpjit::net::Link> links;
  links.reserve(static_cast<std::size_t>(pairs));
  dpjit::util::Rng rng(45);
  for (int p = 0; p < pairs; ++p) {
    links.push_back(dpjit::net::Link{dpjit::NodeId{2 * p}, dpjit::NodeId{2 * p + 1},
                                     rng.uniform(5.0, 10.0), 0.05});
  }
  return dpjit::net::Topology::from_links(2 * pairs, std::move(links));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const auto ops = static_cast<std::size_t>(cli.get_int("ops", quick ? 500000 : 6000000));
  const int nodes = static_cast<int>(cli.get_int("nodes", quick ? 100 : 500));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto tflows = static_cast<std::size_t>(cli.get_int("tflows", 1000));
  const auto tcomps = static_cast<std::uint64_t>(cli.get_int("tcomps", quick ? 150 : 600));
  const auto acomps = static_cast<std::uint64_t>(cli.get_int("acomps", quick ? 2000 : 10000));
  const std::string out_path = cli.get_string("out", "-");

  std::uint64_t sink = 0;

  // --- 1. EventQueue micro-ops (median of 3 runs each) ----------------------
  auto median3 = [](double a, double b, double c) {
    return std::max(std::min(a, b), std::min(std::max(a, b), c));
  };
  std::fprintf(stderr, "[1/9] event-queue micro-ops (%zu ops/run)...\n", ops);
  double base_sp[3], cur_sp[3], base_sc[3], cur_sc[3];
  for (int r = 0; r < 3; ++r) {
    base_sp[r] = bench_schedule_pop<BaselineEventQueue>(ops, sink);
    cur_sp[r] = bench_schedule_pop<sim::EventQueue>(ops, sink);
    base_sc[r] = bench_schedule_cancel_pop<BaselineEventQueue>(ops, sink);
    cur_sc[r] = bench_schedule_cancel_pop<sim::EventQueue>(ops, sink);
  }
  const double baseline_pop = median3(base_sp[0], base_sp[1], base_sp[2]);
  const double current_pop = median3(cur_sp[0], cur_sp[1], cur_sp[2]);
  const double baseline_cancel = median3(base_sc[0], base_sc[1], base_sc[2]);
  const double current_cancel = median3(cur_sc[0], cur_sc[1], cur_sc[2]);

  // --- 2. Routing construction ---------------------------------------------
  std::fprintf(stderr, "[2/9] routing build (n=%d)...\n", nodes);
  util::Rng topo_rng(seed);
  net::TopologyParams tp;
  tp.node_count = nodes;
  const auto topo = net::Topology::generate_waxman(tp, topo_rng);
  double routing_ms = 0.0;
  double routing_mean_bw = 0.0;
  {
    const int reps = quick ? 2 : 3;
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const double t0 = now_s();
      net::Routing routing(topo);
      const double dt = (now_s() - t0) * 1e3;
      best = std::min(best, dt);
      routing_mean_bw = routing.initial_mean_pair_bandwidth_mbps();
    }
    routing_ms = best;
  }

  // --- 3. Transfer-heavy fair-sharing benchmarks ----------------------------
  // Fixed 128-node topology regardless of --nodes: the metric is flow-event
  // throughput at --tflows concurrent fluid flows, not topology scale.
  std::fprintf(stderr, "[3/9] fair-sharing transfers (%zu concurrent, %llu completions)...\n",
               tflows, static_cast<unsigned long long>(tcomps));
  double base_steady = 0.0, cur_steady = 0.0, base_teardown = 0.0, cur_teardown = 0.0;
  {
    util::Rng trng(7);
    net::TopologyParams tp;
    tp.node_count = 128;
    const auto ttopo = net::Topology::generate_waxman(tp, trng);
    const net::Routing trouting(ttopo);
    const std::size_t hub = tflows * 3 / 10;
    const std::size_t background = tflows - hub;
    // Alternate baseline/current to share whatever load regime the box is in.
    double bs[2], cs[2], bt[2], ct[2];
    for (int r = 0; r < 2; ++r) {
      bs[r] = bench_fair_steady<BaselineFairManager>(ttopo, trouting, tflows, tcomps, sink);
      cs[r] = bench_fair_steady<CurrentFairManager>(ttopo, trouting, tflows, tcomps, sink);
      bt[r] = bench_fair_teardown<BaselineFairManager>(ttopo, trouting, hub, background, sink);
      ct[r] = bench_fair_teardown<CurrentFairManager>(ttopo, trouting, hub, background, sink);
    }
    base_steady = std::max(bs[0], bs[1]);
    cur_steady = std::max(cs[0], cs[1]);
    base_teardown = std::min(bt[0], bt[1]);
    cur_teardown = std::min(ct[0], ct[1]);
    if (bt[0] < 0.0 || ct[0] < 0.0 || bt[1] < 0.0 || ct[1] < 0.0) {
      std::cerr << "perf_harness: teardown benchmark self-check failed\n";
      return 1;
    }
  }

  // --- 4. Next-completion arming (scan vs CompletionIndex) ------------------
  // 512 disjoint pairs so the solver work per event is O(1): what remains is
  // the per-flow passes, isolating the arming strategy the index replaced.
  std::fprintf(stderr, "[4/9] next-completion arming (%zu flows, %llu completions)...\n",
               tflows, static_cast<unsigned long long>(acomps));
  double scan_arming = 0.0, index_arming = 0.0;
  {
    const auto atopo = disjoint_pairs_topology(512);
    const net::Routing arouting(atopo, 1);
    double ss[2], is[2];
    for (int r = 0; r < 2; ++r) {
      ss[r] = bench_arming<ScanArmFairManager>(atopo, arouting, tflows, acomps, sink);
      is[r] = bench_arming<CurrentFairManager>(atopo, arouting, tflows, acomps, sink);
    }
    scan_arming = std::max(ss[0], ss[1]);
    index_arming = std::max(is[0], is[1]);
  }

  // --- 5. End-to-end fig11-style run ---------------------------------------
  std::fprintf(stderr, "[5/9] end-to-end dsmf run (n=%d, 36 h horizon)...\n", nodes);
  exp::ExperimentConfig cfg;
  cfg.algorithm = "dsmf";
  cfg.nodes = nodes;
  cfg.seed = seed;
  const double e2e_t0 = now_s();
  const auto result = exp::run_experiment(cfg);
  const double e2e_wall = now_s() - e2e_t0;

  // --- 6. Sharded PDES engine (scale model, serial vs sharded) --------------
  // Denser than the scale/* defaults (short gossip/transfer periods) so
  // windows carry enough events to clear the parallel threshold where cores
  // exist; --quick only shortens the horizon so per-window density - and
  // with it the speedup being measured - stays comparable.
  const auto speers = static_cast<int>(cli.get_int("speers", 200000));
  std::fprintf(stderr, "[6/9] shard engine scale model (%d peers, shards 1 vs 4)...\n", speers);
  exp::ScaleParams sp;
  sp.peers = speers;
  sp.horizon_s = quick ? 120.0 : 600.0;
  sp.gossip_period_s = 60.0;
  sp.task_period_s = 300.0;
  sp.transfer_period_s = 120.0;
  sp.seed = seed;
  sp.shards = 1;
  const exp::ScaleResult scale_serial = exp::run_scale_model(sp);
  sp.shards = 4;
  const exp::ScaleResult scale_sharded = exp::run_scale_model(sp);
  const std::uint64_t shard_digest = exp::scale_digest(scale_serial);
  if (shard_digest != exp::scale_digest(scale_sharded)) {
    std::cerr << "perf_harness: sharded scale-model digest diverged from serial ("
              << exp::scale_digest(scale_sharded) << " != " << shard_digest
              << "): the shard engine broke determinism\n";
    return 1;
  }

  // --- 7. Quantised workflow path (serial vs sharded barrier driver) --------
  // The stage-5 experiment on the epoch-quantised network mode: shards=1 is
  // the barrier loop on a serial ShardEngine, shards=4/threads=2 fans the
  // flow ledgers out to the worker pool. result_digest excludes wall time and
  // counts world-engine events only, so the two digests must match exactly.
  std::fprintf(stderr, "[7/9] quantised workflow shard (n=%d, shards 1 vs 4, 2 threads)...\n",
               nodes);
  exp::ExperimentConfig qcfg = cfg;
  qcfg.system.network_mode = net::NetworkMode::kQuantisedFair;
  qcfg.system.shards = 1;
  qcfg.system.threads = 1;
  const double q_serial_t0 = now_s();
  const auto q_serial = exp::run_experiment(qcfg);
  const double q_serial_wall = now_s() - q_serial_t0;
  qcfg.system.shards = 4;
  qcfg.system.threads = 2;
  const double q_sharded_t0 = now_s();
  const auto q_sharded = exp::run_experiment(qcfg);
  const double q_sharded_wall = now_s() - q_sharded_t0;
  const std::uint64_t workflow_shard_digest = exp::result_digest(q_serial);
  if (workflow_shard_digest != exp::result_digest(q_sharded)) {
    std::cerr << "perf_harness: sharded quantised-workflow digest diverged from serial ("
              << exp::result_digest(q_sharded) << " != " << workflow_shard_digest
              << "): the epoch-barrier driver broke determinism\n";
    return 1;
  }

  // --- 8. Oracle probe cache ------------------------------------------------
  // The scheduling-cycle regime: the flow set is frozen (no events run between
  // probes, exactly as during a dispatch pass), so every what-if rate query
  // hits the same fair-share fixed point. Reference = the legacy from-scratch
  // progressive fill (what every probe cost before this layer existed);
  // uncached = the solver's recorded-schedule replay with the pair cache
  // bypassed; cached = the TransferManager's epoch-keyed probe cache on top.
  // Flow sizes are huge so nothing completes during setup; the pair pool is
  // far smaller than the probe count so the cached loop measures steady-state
  // hits, matching a cycle where every home asks about the same frontier.
  const auto rprobes = static_cast<std::uint64_t>(cli.get_int("rprobes", quick ? 100 : 400));
  const auto uprobes = static_cast<std::uint64_t>(cli.get_int("uprobes", quick ? 50000 : 200000));
  const auto cprobes = static_cast<std::uint64_t>(cli.get_int("cprobes", quick ? 400000 : 2000000));
  std::fprintf(stderr,
               "[8/9] oracle probe cache (%zu flows, %llu reference / %llu uncached / %llu cached "
               "probes)...\n",
               tflows, static_cast<unsigned long long>(rprobes),
               static_cast<unsigned long long>(uprobes),
               static_cast<unsigned long long>(cprobes));
  double reference_probes_per_s = 0.0, uncached_probes_per_s = 0.0, cached_probes_per_s = 0.0;
  constexpr std::size_t kProbePool = 256;
  {
    util::Rng prng(9);
    net::TopologyParams ptp;
    ptp.node_count = 128;
    const auto ptopo = net::Topology::generate_waxman(ptp, prng);
    const net::Routing prouting(ptopo);
    sim::Engine pengine;
    grid::TransferManager ptm(pengine, ptopo, prouting,
                              grid::TransferManager::Mode::kFluidFair);
    auto random_pair = [&]() -> std::pair<NodeId, NodeId> {
      const auto src = NodeId{static_cast<int>(prng.index(128))};
      auto dst = NodeId{static_cast<int>(prng.index(128))};
      if (dst == src) dst = NodeId{(src.get() + 1) % 128};
      return {src, dst};
    };
    for (std::size_t i = 0; i < tflows; ++i) {
      const auto [src, dst] = random_pair();
      // 1e6-2e6 Mb at WAN rates: nothing finishes inside the warm-up window.
      ptm.start(src, dst, prng.uniform(1e6, 2e6), [](bool) {});
    }
    pengine.run_until(5.0);  // past every latency phase: the pool is fully fluid
    std::vector<std::pair<NodeId, NodeId>> pool;
    pool.reserve(kProbePool);
    for (std::size_t i = 0; i < kProbePool; ++i) pool.push_back(random_pair());
    // Bit-exactness self-check before timing: a cache that answers fast but
    // wrong is a regression, not a speedup.
    for (const auto& [src, dst] : pool) {
      const double ref = ptm.predicted_rate_mbps_reference(src, dst);
      if (ptm.predicted_rate_mbps(src, dst) != ref ||
          ptm.predicted_rate_mbps_uncached(src, dst) != ref) {
        std::cerr << "perf_harness: probe cache diverged from a from-scratch solve\n";
        return 1;
      }
    }
    double acc = 0.0;
    double rp[2], up[2], cp[2];
    for (int r = 0; r < 2; ++r) {
      rp[r] = bench_probe<ProbePath::kReference>(ptm, pool, rprobes, acc);
      up[r] = bench_probe<ProbePath::kUncached>(ptm, pool, uprobes, acc);
      cp[r] = bench_probe<ProbePath::kCached>(ptm, pool, cprobes, acc);
    }
    reference_probes_per_s = std::max(rp[0], rp[1]);
    uncached_probes_per_s = std::max(up[0], up[1]);
    cached_probes_per_s = std::max(cp[0], cp[1]);
    sink += static_cast<std::uint64_t>(std::isfinite(acc) ? acc : 1.0) & 1u;
  }
  const double probe_cache_speedup = cached_probes_per_s / std::max(reference_probes_per_s, 1e-9);
  const double probe_replay_speedup = uncached_probes_per_s / std::max(reference_probes_per_s, 1e-9);

  // --- 9. Heavy-traffic open stream, streaming vs retaining metrics ---------
  // trace/open-stream-1m at full scale: 125k fitted jobs of >= 8 tasks, a
  // million-task arrival stream against 200 nodes' service capacity. Run A
  // keeps the scenario's O(1)-memory streaming collector; run B flips
  // streaming_metrics off and retains every report. The digests must match
  // bit-for-bit (the collector-equivalence contract the trace test tier pins
  // per-report; this is the end-to-end seal at nightly scale), and the
  // dispatch-throughput ratio is the watched number: the sketches must not
  // tax the hot path.
  exp::ExperimentConfig scfg = exp::scenario_registry().at("trace/open-stream-1m").config();
  if (quick) scfg.trace.synth_jobs = 25000;  // same stream shape, shorter soak
  std::fprintf(stderr, "[9/9] streaming metrics open stream (%zu jobs, streaming vs retaining)...\n",
               scfg.trace.synth_jobs);
  // Best-of-2 per collector, interleaved, so allocator/page-cache state left
  // behind by the first pass doesn't bias whichever collector runs first.
  exp::ExperimentResult sm_streaming, sm_retaining;
  double sm_s_wall = std::numeric_limits<double>::infinity();
  double sm_r_wall = std::numeric_limits<double>::infinity();
  for (int r = 0; r < 2; ++r) {
    scfg.streaming_metrics = true;
    const double s_t0 = now_s();
    sm_streaming = exp::run_experiment(scfg);
    sm_s_wall = std::min(sm_s_wall, now_s() - s_t0);
    scfg.streaming_metrics = false;
    const double r_t0 = now_s();
    sm_retaining = exp::run_experiment(scfg);
    sm_r_wall = std::min(sm_r_wall, now_s() - r_t0);
  }
  const std::uint64_t sm_digest = exp::result_digest(sm_streaming);
  if (sm_digest != exp::result_digest(sm_retaining)) {
    std::cerr << "perf_harness: streaming-metrics digest diverged from retaining ("
              << sm_digest << " != " << exp::result_digest(sm_retaining)
              << "): the collector perturbed the simulation\n";
    return 1;
  }
  if (!quick &&
      sm_streaming.workflows_submitted * static_cast<std::size_t>(scfg.trace.min_tasks_per_job) <
          1000000u) {
    std::cerr << "perf_harness: open-stream-1m submitted fewer than 1M tasks ("
              << sm_streaming.workflows_submitted << " workflows x "
              << scfg.trace.min_tasks_per_job << " min tasks)\n";
    return 1;
  }
  if (sm_streaming.live_reports > exp::StreamingMetricsCollector::kDefaultReservoir) {
    std::cerr << "perf_harness: streaming run retained " << sm_streaming.live_reports
              << " reports, above the reservoir bound "
              << exp::StreamingMetricsCollector::kDefaultReservoir << "\n";
    return 1;
  }
  if (sm_retaining.live_reports != static_cast<std::size_t>(sm_retaining.workflows_finished)) {
    std::cerr << "perf_harness: retaining run holds " << sm_retaining.live_reports
              << " reports but finished " << sm_retaining.workflows_finished << " workflows\n";
    return 1;
  }
  const double sm_s_tasks_per_s = static_cast<double>(sm_streaming.tasks_dispatched) / sm_s_wall;
  const double sm_r_tasks_per_s = static_cast<double>(sm_retaining.tasks_dispatched) / sm_r_wall;
  const double sm_ratio = sm_s_tasks_per_s / std::max(sm_r_tasks_per_s, 1e-9);

  // --- emit ----------------------------------------------------------------
  std::ostringstream json;
  {
    util::JsonWriter w(json);
    w.begin_object();
    w.kv("schema", "dpjit-perf-harness-v1");
    w.kv("quick", quick);
    w.key("event_queue").begin_object();
    w.kv("ops", static_cast<std::uint64_t>(ops));
    w.kv("baseline_schedule_pop_mops", baseline_pop);
    w.kv("current_schedule_pop_mops", current_pop);
    w.kv("schedule_pop_speedup", current_pop / baseline_pop);
    w.kv("baseline_schedule_cancel_pop_mops", baseline_cancel);
    w.kv("current_schedule_cancel_pop_mops", current_cancel);
    w.kv("schedule_cancel_pop_speedup", current_cancel / baseline_cancel);
    w.end_object();
    w.key("routing").begin_object();
    w.kv("nodes", static_cast<std::int64_t>(nodes));
    w.kv("build_ms", routing_ms);
    w.kv("initial_mean_pair_bandwidth_mbps", routing_mean_bw);
    w.end_object();
    w.key("transfer").begin_object();
    w.kv("topology_nodes", static_cast<std::int64_t>(128));
    w.kv("concurrent_flows", static_cast<std::uint64_t>(tflows));
    w.kv("completions", tcomps);
    w.kv("baseline_steady_completions_per_s", base_steady);
    w.kv("current_steady_completions_per_s", cur_steady);
    w.kv("fair_sharing_speedup", cur_steady / base_steady);
    w.kv("baseline_teardown_ms", base_teardown);
    w.kv("current_teardown_ms", cur_teardown);
    w.kv("teardown_speedup", base_teardown / std::max(cur_teardown, 1e-9));
    w.end_object();
    w.key("next_completion").begin_object();
    w.kv("pairs", static_cast<std::int64_t>(512));
    w.kv("concurrent_flows", static_cast<std::uint64_t>(tflows));
    w.kv("completions", acomps);
    w.kv("scan_completions_per_s", scan_arming);
    w.kv("index_completions_per_s", index_arming);
    w.kv("arming_speedup", index_arming / scan_arming);
    w.end_object();
    w.key("end_to_end").begin_object();
    w.kv("nodes", static_cast<std::int64_t>(nodes));
    w.kv("algorithm", "dsmf");
    w.kv("seed", seed);
    w.kv("wall_s", e2e_wall);
    w.kv("events", result.events_processed);
    w.kv("events_per_s", static_cast<double>(result.events_processed) / e2e_wall);
    w.kv("workflows_finished", static_cast<std::uint64_t>(result.workflows_finished));
    w.kv("act", result.act);
    w.kv("ae", result.ae);
    w.kv("result_digest", exp::result_digest(result));
    w.end_object();
    w.key("shard_engine").begin_object();
    w.kv("peers", static_cast<std::int64_t>(speers));
    w.kv("horizon_s", sp.horizon_s);
    w.kv("shards", static_cast<std::int64_t>(sp.shards));
    w.kv("events", scale_serial.events_processed);
    w.kv("windows", scale_serial.windows);
    w.kv("parallel_windows", scale_sharded.parallel_windows);
    w.kv("serial_s", scale_serial.wall_s);
    w.kv("sharded_s", scale_sharded.wall_s);
    w.kv("sharded_speedup", scale_serial.wall_s / std::max(scale_sharded.wall_s, 1e-9));
    w.kv("serial_events_per_s",
         static_cast<double>(scale_serial.events_processed) / std::max(scale_serial.wall_s, 1e-9));
    w.kv("scale_digest", shard_digest);
    w.end_object();
    w.key("workflow_shard").begin_object();
    w.kv("nodes", static_cast<std::int64_t>(nodes));
    w.kv("algorithm", "dsmf");
    w.kv("seed", seed);
    w.kv("shards", static_cast<std::int64_t>(4));
    w.kv("threads", static_cast<std::int64_t>(2));
    w.kv("events", q_serial.events_processed);
    w.kv("workflows_finished", static_cast<std::uint64_t>(q_serial.workflows_finished));
    w.kv("serial_s", q_serial_wall);
    w.kv("sharded_s", q_sharded_wall);
    w.kv("sharded_speedup", q_serial_wall / std::max(q_sharded_wall, 1e-9));
    w.kv("result_digest", workflow_shard_digest);
    w.end_object();
    w.key("oracle").begin_object();
    w.kv("topology_nodes", static_cast<std::int64_t>(128));
    w.kv("concurrent_flows", static_cast<std::uint64_t>(tflows));
    w.kv("pair_pool", static_cast<std::uint64_t>(kProbePool));
    w.kv("reference_probes", rprobes);
    w.kv("uncached_probes", uprobes);
    w.kv("cached_probes", cprobes);
    w.kv("reference_probes_per_s", reference_probes_per_s);
    w.kv("uncached_probes_per_s", uncached_probes_per_s);
    w.kv("cached_probes_per_s", cached_probes_per_s);
    w.kv("probe_replay_speedup", probe_replay_speedup);
    w.kv("probe_cache_speedup", probe_cache_speedup);
    w.end_object();
    w.key("streaming_metrics").begin_object();
    w.kv("scenario", "trace/open-stream-1m");
    w.kv("jobs", static_cast<std::uint64_t>(scfg.trace.synth_jobs));
    w.kv("min_tasks_per_job", static_cast<std::int64_t>(scfg.trace.min_tasks_per_job));
    w.kv("workflows_submitted", static_cast<std::uint64_t>(sm_streaming.workflows_submitted));
    w.kv("workflows_finished", static_cast<std::uint64_t>(sm_streaming.workflows_finished));
    w.kv("tasks_dispatched", sm_streaming.tasks_dispatched);
    w.kv("live_reports_streaming", static_cast<std::uint64_t>(sm_streaming.live_reports));
    w.kv("live_reports_retaining", static_cast<std::uint64_t>(sm_retaining.live_reports));
    w.kv("streaming_wall_s", sm_s_wall);
    w.kv("retaining_wall_s", sm_r_wall);
    w.kv("streaming_tasks_per_s", sm_s_tasks_per_s);
    w.kv("retaining_tasks_per_s", sm_r_tasks_per_s);
    w.kv("tasks_per_s_ratio", sm_ratio);
    w.kv("result_digest", sm_digest);
    w.end_object();
    w.end_object();
  }
  json << "\n";

  if (out_path == "-") {
    std::cout << json.str();
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "perf_harness: cannot open " << out_path << " for writing\n";
      return 1;
    }
    out << json.str();
    std::cout << "wrote " << out_path << "\n";
  }
  // Human-readable summary on stderr so CI logs show the numbers inline.
  std::fprintf(stderr,
               "schedule/pop  %.2f -> %.2f Mops/s (%.2fx)\n"
               "schedule/cancel/pop %.2f -> %.2f Mops/s (%.2fx)\n"
               "routing build n=%d: %.1f ms\n"
               "fair steady-state %.0f -> %.0f completions/s (%.2fx)\n"
               "fair teardown %.2f -> %.2f ms (%.1fx)\n"
               "next-completion arming %.0f -> %.0f completions/s (%.2fx)\n"
               "end-to-end n=%d: %.2f s wall, %llu events (%.0f events/s)\n"
               "shard engine %d peers: serial %.2f s vs 4-shard %.2f s (%.2fx, digest ok)\n"
               "quantised workflow n=%d: serial %.2f s vs 4-shard %.2f s (%.2fx, digest ok)\n"
               "oracle probes ref %.0f -> replay %.0f -> cached %.0f probes/s (%.0fx, "
               "bit-identical)\n"
               "streaming metrics %zu jobs: %.0f vs %.0f tasks/s (ratio %.2f, %zu live reports, "
               "digest ok)\n",
               baseline_pop, current_pop, current_pop / baseline_pop, baseline_cancel,
               current_cancel, current_cancel / baseline_cancel, nodes, routing_ms, base_steady,
               cur_steady, cur_steady / base_steady, base_teardown, cur_teardown,
               base_teardown / std::max(cur_teardown, 1e-9), scan_arming, index_arming,
               index_arming / scan_arming, nodes, e2e_wall,
               static_cast<unsigned long long>(result.events_processed),
               static_cast<double>(result.events_processed) / e2e_wall, speers,
               scale_serial.wall_s, scale_sharded.wall_s,
               scale_serial.wall_s / std::max(scale_sharded.wall_s, 1e-9), nodes, q_serial_wall,
               q_sharded_wall, q_serial_wall / std::max(q_sharded_wall, 1e-9),
               reference_probes_per_s, uncached_probes_per_s, cached_probes_per_s,
               probe_cache_speedup, scfg.trace.synth_jobs, sm_s_tasks_per_s, sm_r_tasks_per_s,
               sm_ratio, sm_streaming.live_reports);
  return sink == 0xdeadbeef ? 2 : 0;
}
