// Shared scaffolding for the per-figure experiment binaries.
//
// Every binary regenerates one table/figure of the paper (see DESIGN.md's
// per-experiment index). Absolute numbers depend on the machine-independent
// simulated workload, so they are stable; the default scale is reduced from
// the paper's n=1000 so the whole bench suite runs in minutes. Pass
// `--paper` (or explicit --nodes=1000) to run at publication scale.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/policy_registry.hpp"
#include "exp/reporters.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "util/config.hpp"
#include "util/table_printer.hpp"

namespace dpjit::bench {

/// Parses the common experiment knobs. `default_nodes` is per-binary.
inline exp::ExperimentConfig base_config(const util::Config& cli, int default_nodes) {
  exp::ExperimentConfig cfg;
  if (cli.get_bool("paper", false)) {
    cfg.nodes = 1000;  // paper Section IV.A headline scale
  } else {
    cfg.nodes = default_nodes;
  }
  cfg.nodes = static_cast<int>(cli.get_int("nodes", cfg.nodes));
  cfg.workflows_per_node = static_cast<int>(cli.get_int("workflows", 3));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  cfg.system.horizon_s = cli.get_double("hours", 36.0) * 3600.0;
  return cfg;
}

/// The registry-backed replacement for base_config: starts from a named
/// scenario of exp::scenario_registry(), optionally drops to a per-binary
/// reduced bench scale, then applies the common CLI overrides
/// (--paper/--nodes/--workflows/--seed/--hours) exactly like base_config.
inline exp::ExperimentConfig scenario_config(const util::Config& cli, std::string_view scenario,
                                             int bench_scale_nodes = 0) {
  exp::ExperimentConfig cfg = exp::scenario_registry().at(scenario).config();
  if (bench_scale_nodes > 0) cfg.nodes = bench_scale_nodes;
  if (cli.get_bool("paper", false)) cfg.nodes = 1000;
  cfg.nodes = static_cast<int>(cli.get_int("nodes", cfg.nodes));
  cfg.workflows_per_node =
      static_cast<int>(cli.get_int("workflows", cfg.workflows_per_node));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.system.horizon_s = cli.get_double("hours", cfg.system.horizon_s / 3600.0) * 3600.0;
  return cfg;
}

/// Prints the standard banner: what this binary reproduces + configuration.
inline void banner(const std::string& what, const exp::ExperimentConfig& cfg) {
  std::cout << "=== " << what << " ===\n"
            << "nodes=" << cfg.nodes << " workflows/node=" << cfg.workflows_per_node
            << " horizon=" << cfg.system.horizon_s / 3600.0 << "h seed=" << cfg.seed
            << " (use --paper for n=1000 publication scale)\n\n";
}

/// Runs the base config across the paper's eight algorithms with progress.
inline std::vector<exp::ExperimentResult> run_all_algorithms(const exp::ExperimentConfig& base) {
  const auto configs = exp::across_algorithms(base);
  std::fprintf(stderr, "running %zu algorithm(s) x 1 configuration...\n", configs.size());
  return exp::run_sweep(configs);
}

/// Runs each configuration `seeds` times (seed, seed+1, ...) and averages the
/// scalar metrics (ACT, AE, response, finished) per configuration. Curves are
/// kept from the first seed. Sweep-style benches expose this via --seeds=N to
/// damp single-draw workload noise.
inline std::vector<exp::ExperimentResult> run_seed_averaged(
    const std::vector<exp::ExperimentConfig>& configs, int seeds) {
  if (seeds <= 1) return exp::run_sweep(configs);
  std::vector<exp::ExperimentConfig> expanded;
  expanded.reserve(configs.size() * static_cast<std::size_t>(seeds));
  for (const auto& cfg : configs) {
    for (int s = 0; s < seeds; ++s) {
      exp::ExperimentConfig c = cfg;
      c.seed = cfg.seed + static_cast<std::uint64_t>(s);
      expanded.push_back(std::move(c));
    }
  }
  const auto raw = exp::run_sweep(expanded);
  std::vector<exp::ExperimentResult> averaged;
  averaged.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    exp::ExperimentResult acc = raw[i * static_cast<std::size_t>(seeds)];
    for (int s = 1; s < seeds; ++s) {
      const auto& r = raw[i * static_cast<std::size_t>(seeds) + static_cast<std::size_t>(s)];
      acc.act += r.act;
      acc.ae += r.ae;
      acc.mean_response += r.mean_response;
      acc.workflows_finished += r.workflows_finished;
      acc.tasks_failed += r.tasks_failed;
    }
    acc.act /= seeds;
    acc.ae /= seeds;
    acc.mean_response /= seeds;
    acc.workflows_finished /= static_cast<std::size_t>(seeds);
    acc.tasks_failed /= static_cast<std::uint64_t>(seeds);
    averaged.push_back(std::move(acc));
  }
  return averaged;
}

/// "Who wins" line: compares DSMF with the other decentralized algorithms the
/// way the abstract states its 20-60% / 37.5-90% claims.
inline void print_dsmf_gains(const std::vector<exp::ExperimentResult>& results) {
  const exp::ExperimentResult* dsmf = nullptr;
  for (const auto& r : results) {
    if (r.algorithm == "dsmf") dsmf = &r;
  }
  if (dsmf == nullptr || dsmf->act <= 0.0) return;
  std::cout << "\nDSMF vs the other algorithms (positive = DSMF better):\n";
  for (const auto& r : results) {
    if (r.algorithm == "dsmf" || r.act <= 0.0) continue;
    const double act_red = (r.act - dsmf->act) / r.act * 100.0;
    const double ae_gain = r.ae > 0.0 ? (dsmf->ae - r.ae) / r.ae * 100.0 : 0.0;
    std::printf("  vs %-10s ACT reduction %6.1f%%   AE improvement %6.1f%%\n",
                r.algorithm.c_str(), act_red, ae_gain);
  }
}

}  // namespace dpjit::bench
