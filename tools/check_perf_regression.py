#!/usr/bin/env python3
"""Compares a fresh perf_harness JSON against the checked-in baseline.

Usage: check_perf_regression.py <current.json> <baseline.json>
                                [--tolerance=0.30] [--strict-digest]

The perf harness times the current sim::EventQueue against a frozen in-binary
copy of the pre-overhaul implementation, so the *speedup ratios* it reports
are measured on one machine inside one binary and are comparable across
hosts. This gate fails (exit 1) when a watched speedup falls more than
`tolerance` below the baseline's recorded ratio - i.e. someone made the hot
path slower relative to the fixed reference. Absolute Mops/s and events/s
are printed for information only (CI hardware varies too much to gate on).

The end-to-end result digest is compared against whichever recorded section
(`end_to_end` or `quick_end_to_end`) matches the current run's nodes+seed.
A mismatch means simulation output changed. That is a hard failure only
with --strict-digest (use it when comparing runs from the same machine and
toolchain); by default it prints a prominent warning, because the workload
generators call libm (std::log/std::exp) and different glibc versions may
legitimately produce different last-ulp results.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"PERF REGRESSION: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    tolerance = 0.30
    strict_digest = "--strict-digest" in sys.argv[1:]
    for a in sys.argv[1:]:
        if a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])

    with open(args[0]) as f:
        current = json.load(f)
    with open(args[1]) as f:
        baseline = json.load(f)

    # Quick runs use fewer micro-ops, which changes the achievable speedup
    # (the lazy-cancel baseline degrades with run length), so compare against
    # the recorded quick-run ratios when available.
    base_eq = "event_queue"
    if current.get("quick") and "quick_event_queue" in baseline:
        base_eq = "quick_event_queue"
    base_tr = "transfer"
    if current.get("quick") and "quick_transfer" in baseline:
        base_tr = "quick_transfer"
    base_nc = "next_completion"
    if current.get("quick") and "quick_next_completion" in baseline:
        base_nc = "quick_next_completion"
    base_se = "shard_engine"
    if current.get("quick") and "quick_shard_engine" in baseline:
        base_se = "quick_shard_engine"
    base_or = "oracle"
    if current.get("quick") and "quick_oracle" in baseline:
        base_or = "quick_oracle"
    base_ws = "workflow_shard"
    if current.get("quick") and "quick_workflow_shard" in baseline:
        base_ws = "quick_workflow_shard"
    base_sm = "streaming_metrics"
    if current.get("quick") and "quick_streaming_metrics" in baseline:
        base_sm = "quick_streaming_metrics"
    watched = [
        ("event_queue", base_eq, "schedule_pop_speedup"),
        ("event_queue", base_eq, "schedule_cancel_pop_speedup"),
        ("transfer", base_tr, "fair_sharing_speedup"),
        ("next_completion", base_nc, "arming_speedup"),
        ("shard_engine", base_se, "sharded_speedup"),
        ("workflow_shard", base_ws, "sharded_speedup"),
        ("oracle", base_or, "probe_cache_speedup"),
        # The streaming collector must stay free on the hot path: the
        # streaming/retaining dispatch-throughput ratio sits near 1.0 and a
        # drop means the sketches started taxing every report.
        ("streaming_metrics", base_sm, "tasks_per_s_ratio"),
    ]
    info = [
        ("event_queue", "current_schedule_pop_mops"),
        ("event_queue", "current_schedule_cancel_pop_mops"),
        ("transfer", "current_steady_completions_per_s"),
        ("transfer", "teardown_speedup"),
        ("next_completion", "index_completions_per_s"),
        ("end_to_end", "events_per_s"),
        ("routing", "build_ms"),
        ("shard_engine", "serial_events_per_s"),
        ("shard_engine", "sharded_s"),
        ("shard_engine", "parallel_windows"),
        ("workflow_shard", "serial_s"),
        ("workflow_shard", "sharded_s"),
        ("oracle", "reference_probes_per_s"),
        ("oracle", "uncached_probes_per_s"),
        ("oracle", "cached_probes_per_s"),
        ("oracle", "probe_replay_speedup"),
        ("streaming_metrics", "streaming_tasks_per_s"),
        ("streaming_metrics", "retaining_tasks_per_s"),
        ("streaming_metrics", "live_reports_streaming"),
    ]
    for section, key in info:
        print(f"info: {section}.{key} = {current.get(section, {}).get(key)}")

    ok = True
    for cur_section, base_section, key in watched:
        base = baseline.get(base_section, {}).get(key)
        cur = current.get(cur_section, {}).get(key)
        if base is None or cur is None:
            print(f"note: {base_section}.{key} missing (baseline={base}, current={cur}); skipped")
            continue
        ratio = cur / base
        status = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
        print(
            f"{base_section}.{key}: recorded={base:.3f} current={cur:.3f} ratio={ratio:.2f} {status}"
        )
        if ratio < 1.0 - tolerance:
            ok = False

    cur_e2e = current.get("end_to_end", {})
    recorded = None
    for section in ("end_to_end", "quick_end_to_end"):
        ref = baseline.get(section, {})
        if ref.get("nodes") == cur_e2e.get("nodes") and ref.get("seed") == cur_e2e.get("seed"):
            recorded = (section, ref)
            break
    if recorded is None:
        print("note: no recorded digest matches this scale/seed; digest check skipped")
    elif cur_e2e.get("result_digest") != recorded[1].get("result_digest"):
        msg = (
            f"end-to-end result digest changed vs recorded {recorded[0]} "
            f"({cur_e2e.get('result_digest')} != {recorded[1].get('result_digest')}): "
            "simulation output is not bit-identical"
        )
        if strict_digest:
            fail(msg)
        print(f"WARNING: {msg}")
        print("WARNING: expected on a different toolchain/glibc; investigate if same-machine")
    else:
        print(f"digest ok vs recorded {recorded[0]}")

    # Same treatment for the quantised workflow-shard run (the harness already
    # hard-fails if serial and sharded diverge within one run; this catches a
    # cross-commit output change at the same scale/seed).
    cur_ws = current.get("workflow_shard", {})
    for section in ("workflow_shard", "quick_workflow_shard"):
        ref = baseline.get(section, {})
        if ref.get("nodes") == cur_ws.get("nodes") and ref.get("seed") == cur_ws.get("seed"):
            if cur_ws.get("result_digest") != ref.get("result_digest"):
                msg = (
                    f"quantised workflow digest changed vs recorded {section} "
                    f"({cur_ws.get('result_digest')} != {ref.get('result_digest')})"
                )
                if strict_digest:
                    fail(msg)
                print(f"WARNING: {msg}")
            else:
                print(f"quantised digest ok vs recorded {section}")
            break

    if not ok:
        fail(f"a watched speedup fell more than {tolerance:.0%} below the recorded baseline")
    print("perf check passed")


if __name__ == "__main__":
    main()
