#!/usr/bin/env python3
"""Markdown checker for the repo docs (stdlib only, no network).

Usage: check_docs.py FILE.md [FILE.md ...]

Checks, per file:
  - every relative markdown link [text](path) resolves to an existing file
    (relative to the file containing the link);
  - intra-document and cross-document anchors (#heading-slug) resolve to a
    real heading, using GitHub's slug rules (lowercase, spaces -> dashes,
    punctuation stripped);
  - fenced code blocks are balanced (an odd number of ``` fences means a
    block never closed and everything below renders as code);
  - no literal tab characters (they render inconsistently in tables).

External http(s) links are *not* fetched - CI must not depend on third-party
uptime - but their markdown syntax is still validated.

Exit code 0 = clean, 1 = problems found (each printed as file:line: message).
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip formatting/punctuation, lowercase, dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # drop code spans, keep text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect_anchors(path: str) -> set:
    anchors = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                slug = github_slug(m.group(2))
                n = counts.get(slug, 0)
                counts[slug] = n + 1
                anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_file(path: str, anchor_cache: dict) -> list:
    problems = []
    base_dir = os.path.dirname(os.path.abspath(path))
    fence_opens = 0
    in_fence = False
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()
    for lineno, line in enumerate(lines, 1):
        if "\t" in line:
            problems.append(f"{path}:{lineno}: literal tab character")
        if line.lstrip().startswith("```"):
            fence_opens += 1
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                file_part, anchor = path, target[1:]
            else:
                file_part, _, anchor = target.partition("#")
                file_part = os.path.normpath(os.path.join(base_dir, file_part))
            if not os.path.exists(file_part):
                problems.append(f"{path}:{lineno}: broken link target '{target}'")
                continue
            if anchor and file_part.endswith(".md"):
                if file_part not in anchor_cache:
                    anchor_cache[file_part] = collect_anchors(file_part)
                if anchor not in anchor_cache[file_part]:
                    problems.append(
                        f"{path}:{lineno}: anchor '#{anchor}' not found in {file_part}"
                    )
    if fence_opens % 2 != 0:
        problems.append(f"{path}: unbalanced ``` code fences ({fence_opens} markers)")
    return problems


def main() -> None:
    files = sys.argv[1:]
    if not files:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    anchor_cache = {}
    problems = []
    for path in files:
        if not os.path.exists(path):
            problems.append(f"{path}: file not found")
            continue
        problems.extend(check_file(path, anchor_cache))
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        sys.exit(1)
    print(f"check_docs: {len(files)} file(s) clean")


if __name__ == "__main__":
    main()
