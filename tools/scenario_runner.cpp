// Scenario library front-end.
//
//   scenario_runner --list [--json]          enumerate registered scenarios
//   scenario_runner --describe=NAME [--json] full metadata + resolved config
//   scenario_runner --run=NAME [overrides]   run one scenario at full scale
//   scenario_runner --digest [--run=NAME]    conformance digests (golden doc)
//
// `--digest` emits the canonical golden-digest document for every registered
// scenario (or just NAME) at the small-n conformance preset — byte-identical
// to tests/scenario/golden_digests.json, so regenerating the goldens is
//
//   ./scenario_runner --digest > tests/scenario/golden_digests.json
//
// Run overrides: --nodes, --workflows, --seed, --hours, --algorithm,
// --small (applies the conformance preset before running), and the CCR
// knobs --load=MIN:MAX (task load, MI) / --data=MIN:MAX (edge data, Mb) so
// any scenario sweeps across the Figs. 9-10 regimes without registering
// throwaway variants. `--trace=<file>` swaps a real SWF/GWA job log in for
// the scenario's workload (replacing a trace/* scenario's bundled sample, or
// making any classic scenario trace-driven).
//
// `--shards=N` selects the PDES shard count for sharded (scale/*) scenarios;
// results and digests are byte-identical at every count, which the
// shard-determinism CI job verifies by diffing `--digest --shards=N
// [--threads=M]` output against the goldens for several (N, M). Classic
// scenarios on the quantised network mode shard the same way through the
// epoch-barrier driver; zero-lookahead classic scenarios ignore the flag and
// always run the serial engine (see exp::Scenario::sharded). `--threads`
// caps the worker threads driving parallel windows (also results-neutral).
#include <cmath>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/policy_registry.hpp"
#include "exp/reporters.hpp"
#include "exp/scale_model.hpp"
#include "exp/scenario.hpp"
#include "net/network_model.hpp"
#include "util/config.hpp"
#include "util/json.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace dpjit;

int list_scenarios(bool as_json) {
  const auto& reg = exp::scenario_registry();
  if (as_json) {
    std::cout << "[\n";
    const auto& all = reg.all();
    for (std::size_t i = 0; i < all.size(); ++i) {
      const auto& s = all[i];
      const auto cfg = s.config();
      std::cout << "  {\"name\": \"" << util::json_escape(s.name) << "\",";
      std::cout << " \"tier\": \"" << exp::to_string(s.tier) << "\",";
      std::cout << " \"paper_section\": \"" << util::json_escape(s.paper_section) << "\",";
      std::cout << " \"algorithm\": \"" << util::json_escape(cfg.algorithm) << "\",";
      std::cout << " \"nodes\": " << cfg.nodes << ",";
      std::cout << " \"conformance_nodes\": " << exp::conformance_nodes(cfg.nodes) << ",";
      std::cout << " \"sharded\": " << (s.sharded ? "true" : "false") << ",";
      std::cout << " \"description\": \"" << util::json_escape(s.description) << "\"}";
      std::cout << (i + 1 < all.size() ? "," : "") << "\n";
    }
    std::cout << "]\n";
    return 0;
  }
  util::TablePrinter table(
      {"scenario", "tier", "paper", "algorithm", "nodes", "engine", "description"});
  for (const auto& s : reg.all()) {
    const auto cfg = s.config();
    table.add_row({s.name, std::string(exp::to_string(s.tier)),
                   s.paper_section.empty() ? "-" : s.paper_section, cfg.algorithm,
                   std::to_string(cfg.nodes), s.sharded ? "sharded" : "serial", s.description});
  }
  table.print(std::cout);
  std::cout << "\n"
            << reg.size()
            << " scenarios. Run one: scenario_runner --run=<name>; full metadata: "
               "scenario_runner --describe=<name>\n";
  return 0;
}

/// Full metadata + the resolved full-scale configuration of one scenario, so
/// the docs/EXPERIMENTS.md catalogue can be diffed against the binary truth.
int describe_scenario(const std::string& name, bool as_json) {
  const auto* s = exp::scenario_registry().find(name);
  if (s == nullptr) {
    std::cerr << "scenario_runner: unknown scenario '" << name << "' (try --list)\n";
    return 1;
  }
  const auto cfg = s->config();
  const int conf_nodes = exp::conformance_nodes(cfg.nodes);
  const char* arrivals = "closed-t0";
  if (cfg.trace.enabled()) {
    arrivals = cfg.trace.fitted ? "trace-fitted" : "trace-replay";
  } else if (cfg.bursts.wave_count > 0) {
    arrivals = "burst-waves";
  } else if (cfg.mean_interarrival_s > 0.0) {
    arrivals = "open-poisson";
  }
  // Which transfer model the run simulates, and whether the algorithm reads
  // the live RateOracle or only static estimates - the two axes a reader of
  // a contention/* or quantised/* result needs to know to interpret it. The
  // mode row comes straight from the net::NetworkModel matrix so this listing
  // cannot drift from the engine's actual branch.
  const net::NetworkMode net_mode = cfg.effective_network_mode();
  const net::NetworkModeInfo& net_info = net::network_mode_info(net_mode);
  const std::string_view network_model = net_info.name;
  const auto algo = core::make_algorithm(cfg.algorithm);
  const bool ca_suffix = cfg.algorithm.size() > 3 &&
                         cfg.algorithm.compare(cfg.algorithm.size() - 3, 3, "-ca") == 0;
  const char* oracle_path = "static estimates (gossip averages / bandwidth matrix)";
  if (algo.contended_planner) {
    oracle_path = "live RateOracle probes at plan time (batched probe_rates)";
  } else if (ca_suffix) {
    oracle_path = "live RateOracle probes per scheduling cycle (what-if fair-share solves)";
  }
  if (as_json) {
    std::cout << "{\n";
    std::cout << "  \"name\": \"" << util::json_escape(s->name) << "\",\n";
    std::cout << "  \"description\": \"" << util::json_escape(s->description) << "\",\n";
    std::cout << "  \"tier\": \"" << exp::to_string(s->tier) << "\",\n";
    std::cout << "  \"paper_section\": \"" << util::json_escape(s->paper_section) << "\",\n";
    std::cout << "  \"algorithm\": \"" << util::json_escape(cfg.algorithm) << "\",\n";
    std::cout << "  \"nodes\": " << cfg.nodes << ",\n";
    std::cout << "  \"workflows_per_node\": " << cfg.workflows_per_node << ",\n";
    std::cout << "  \"horizon_hours\": " << cfg.system.horizon_s / 3600.0 << ",\n";
    std::cout << "  \"seed\": " << cfg.seed << ",\n";
    std::cout << "  \"fair_sharing\": " << (cfg.fair_sharing ? "true" : "false") << ",\n";
    std::cout << "  \"network_model\": \"" << network_model << "\",\n";
    std::cout << "  \"oracle_path\": \"" << oracle_path << "\",\n";
    std::cout << "  \"dynamic_factor\": " << cfg.dynamic_factor << ",\n";
    std::cout << "  \"reschedule\": " << (cfg.reschedule ? "true" : "false") << ",\n";
    std::cout << "  \"load_mi\": [" << cfg.workflow.min_load_mi << ", ";
    std::cout << cfg.workflow.max_load_mi << "],\n";
    std::cout << "  \"data_mb\": [" << cfg.workflow.min_data_mb << ", ";
    std::cout << cfg.workflow.max_data_mb << "],\n";
    std::cout << "  \"arrival_process\": \"" << arrivals << "\",\n";
    std::cout << "  \"workload_mix_entries\": " << cfg.workload_mix.size() << ",\n";
    std::cout << "  \"sharded\": " << (s->sharded ? "true" : "false") << ",\n";
    std::cout << "  \"network_shardable\": " << (net_info.shardable ? "true" : "false") << ",\n";
    std::cout << "  \"conformance_nodes\": " << conf_nodes << "\n";
    std::cout << "}\n";
    return 0;
  }
  std::cout << "scenario:          " << s->name << "\n";
  std::cout << "description:       " << s->description << "\n";
  std::cout << "tier:              " << exp::to_string(s->tier) << "\n";
  std::cout << "paper section:     " << (s->paper_section.empty() ? "-" : s->paper_section) << "\n";
  std::cout << "algorithm:         " << cfg.algorithm << "\n";
  std::cout << "nodes:             " << cfg.nodes << "\n";
  std::cout << "workflows/node:    " << cfg.workflows_per_node << "\n";
  std::cout << "horizon:           " << cfg.system.horizon_s / 3600.0 << " h\n";
  std::cout << "seed:              " << cfg.seed << "\n";
  std::cout << "fair sharing:      " << (cfg.fair_sharing ? "yes" : "no") << "\n";
  std::cout << "network model:     " << network_model << "\n";
  std::cout << "oracle path:       " << oracle_path << "\n";
  std::cout << "dynamic factor:    " << cfg.dynamic_factor << "\n";
  std::cout << "reschedule failed: " << (cfg.reschedule ? "yes" : "no") << "\n";
  std::cout << "task load (MI):    [" << cfg.workflow.min_load_mi << ", ";
  std::cout << cfg.workflow.max_load_mi << "]\n";
  std::cout << "edge data (Mb):    [" << cfg.workflow.min_data_mb << ", ";
  std::cout << cfg.workflow.max_data_mb << "]\n";
  std::cout << "arrival process:   " << arrivals << "\n";
  std::cout << "workload mix:      " << (cfg.workload_mix.empty() ? "random-only" : "mixed");
  std::cout << "\n";
  const char* engine_line = "serial (zero-lookahead network model ignores --shards/--threads)";
  if (s->sharded) {
    engine_line = "sharded (scale model; accepts --shards)";
  } else if (net_info.shardable) {
    engine_line = "sharded (quantised epoch-barrier loop; accepts --shards/--threads)";
  }
  std::cout << "engine:            " << engine_line << "\n";
  std::cout << "conformance nodes: " << conf_nodes;
  std::cout << " (digest pinned in tests/scenario/golden_digests.json)\n";
  return 0;
}

int emit_digests(const std::string& only, int shards, int threads) {
  const auto& reg = exp::scenario_registry();
  std::vector<std::pair<std::string, std::uint64_t>> digests;
  int serial_only = 0;
  for (const auto& s : reg.all()) {
    if (!only.empty() && s.name != only) continue;
    const auto cfg = s.config();
    const bool takes_shards =
        s.sharded || net::network_mode_info(cfg.effective_network_mode()).shardable;
    const int n = exp::conformance_nodes(cfg.nodes);
    std::cerr << "digesting " << s.name << " (n=" << n;
    if (takes_shards && shards > 1) std::cerr << ", shards=" << shards;
    if (takes_shards && threads > 1) std::cerr << ", threads=" << threads;
    std::cerr << ")...\n";
    if (!takes_shards && (shards > 1 || threads > 1)) ++serial_only;
    digests.emplace_back(s.name, exp::conformance_digest(s, shards, threads));
  }
  if (!only.empty() && digests.empty()) {
    std::cerr << "scenario_runner: unknown scenario '" << only << "' (try --list)\n";
    return 1;
  }
  if (serial_only > 0) {
    std::cerr << "scenario_runner: warning: --shards/--threads ignored by " << serial_only
              << " zero-lookahead scenario(s) (serial engine; digests unaffected)\n";
  }
  exp::write_digest_document(std::cout, digests);
  return 0;
}

/// Runs a scale/* scenario on the sharded engine and reports the aggregate
/// counters plus the shard-invariant scale digest.
int run_scale_scenario(const util::Config& cli, const exp::Scenario& scenario,
                       const exp::ExperimentConfig& cfg, bool as_json) {
  exp::ScaleParams params = exp::scale_params_from_config(cfg);
  params.shards = static_cast<int>(cli.get_int("shards", params.shards));
  params.threads = static_cast<int>(cli.get_int("threads", params.threads));

  std::cerr << "=== " << scenario.name << " ===\n"
            << scenario.description << "\n"
            << "peers=" << params.peers << " shards=" << params.shards
            << " horizon=" << params.horizon_s / 3600.0 << "h seed=" << params.seed << "\n\n";

  const exp::ScaleResult r = exp::run_scale_model(params);
  const std::uint64_t digest = exp::scale_digest(r);

  if (as_json) {
    std::cout << "{\n";
    std::cout << "  \"scenario\": \"" << util::json_escape(scenario.name) << "\",\n";
    std::cout << "  \"peers\": " << r.peers << ",\n";
    std::cout << "  \"regions\": " << r.regions << ",\n";
    std::cout << "  \"shards\": " << r.shards << ",\n";
    std::cout << "  \"window_s\": " << r.window_s << ",\n";
    // +inf at shards=1; JSON has no inf literal, so emit null there.
    if (std::isfinite(r.lookahead_s)) {
      std::cout << "  \"lookahead_s\": " << r.lookahead_s << ",\n";
    } else {
      std::cout << "  \"lookahead_s\": null,\n";
    }
    std::cout << "  \"events_processed\": " << r.events_processed << ",\n";
    std::cout << "  \"windows\": " << r.windows << ",\n";
    std::cout << "  \"parallel_windows\": " << r.parallel_windows << ",\n";
    std::cout << "  \"tasks_completed\": " << r.tasks_completed << ",\n";
    std::cout << "  \"transfers_completed\": " << r.transfers_completed << ",\n";
    std::cout << "  \"mb_transferred\": " << r.mb_transferred << ",\n";
    std::cout << "  \"gossip_sent\": " << r.gossip_sent << ",\n";
    std::cout << "  \"gossip_merged\": " << r.gossip_merged << ",\n";
    std::cout << "  \"churn_departures\": " << r.churn_departures << ",\n";
    std::cout << "  \"churn_rejoins\": " << r.churn_rejoins << ",\n";
    std::cout << "  \"dropped_messages\": " << r.dropped_messages << ",\n";
    std::cout << "  \"wall_s\": " << r.wall_s << ",\n";
    std::cout << "  \"scale_digest\": \"" << digest << "\"\n";
    std::cout << "}\n";
    std::cerr << "scale_digest: " << digest << "\n";
    return 0;
  }
  std::cout << "peers:               " << r.peers << " (" << r.regions << " regions, " << r.shards
            << " shards)\n";
  std::cout << "window / lookahead:  " << r.window_s << " s / " << r.lookahead_s << " s\n";
  std::cout << "events:              " << r.events_processed << " in " << r.windows << " windows ("
            << r.parallel_windows << " parallel)\n";
  std::cout << "tasks completed:     " << r.tasks_completed << "\n";
  std::cout << "transfers completed: " << r.transfers_completed << " (" << r.mb_transferred
            << " MB)\n";
  std::cout << "gossip sent/merged:  " << r.gossip_sent << " / " << r.gossip_merged << "\n";
  std::cout << "churn out/back:      " << r.churn_departures << " / " << r.churn_rejoins << "\n";
  std::cout << "dropped messages:    " << r.dropped_messages << "\n";
  std::cout << "wall clock:          " << r.wall_s << " s\n";
  std::cout << "scale_digest: " << digest << "\n";
  return 0;
}

int run_scenario(const util::Config& cli, const std::string& name, bool as_json) {
  const auto* scenario = exp::scenario_registry().find(name);
  if (scenario == nullptr) {
    std::cerr << "scenario_runner: unknown scenario '" << name << "' (try --list)\n";
    return 1;
  }

  exp::ExperimentConfig cfg = scenario->config();
  if (cli.get_bool("small", false)) cfg = exp::conformance_preset(std::move(cfg));
  cfg.algorithm = cli.get_string("algorithm", cfg.algorithm);
  cfg.nodes = static_cast<int>(cli.get_int("nodes", cfg.nodes));
  cfg.workflows_per_node =
      static_cast<int>(cli.get_int("workflows", cfg.workflows_per_node));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.system.horizon_s = cli.get_double("hours", cfg.system.horizon_s / 3600.0) * 3600.0;
  // CCR overrides, "MIN:MAX" (e.g. --load=100:10000 --data=10:1000 is the
  // paper's compute-heavy regime).
  const auto parse_range = [](const std::string& spec, const char* flag,
                              double& lo, double& hi) {
    if (spec.empty()) return true;
    const auto colon = spec.find(':');
    if (colon == std::string::npos) {
      std::cerr << "scenario_runner: --" << flag << " wants MIN:MAX, got '" << spec << "'\n";
      return false;
    }
    try {
      lo = std::stod(spec.substr(0, colon));
      hi = std::stod(spec.substr(colon + 1));
    } catch (const std::exception&) {
      std::cerr << "scenario_runner: --" << flag << " wants MIN:MAX, got '" << spec << "'\n";
      return false;
    }
    return true;
  };
  double load_lo = cfg.workflow.min_load_mi, load_hi = cfg.workflow.max_load_mi;
  double data_lo = cfg.workflow.min_data_mb, data_hi = cfg.workflow.max_data_mb;
  if (!parse_range(cli.get_string("load", ""), "load", load_lo, load_hi) ||
      !parse_range(cli.get_string("data", ""), "data", data_lo, data_hi)) {
    return 1;
  }
  cfg.set_load_range(load_lo, load_hi);
  cfg.set_data_range(data_lo, data_hi);
  const std::string trace_file = cli.get_string("trace", "");
  if (!trace_file.empty()) {
    // A file trumps any embedded sample; format auto-detects unless the
    // scenario pinned one AND still owns the workload (it no longer does).
    cfg.trace.path = trace_file;
    cfg.trace.text.clear();
    cfg.trace.format = exp::TraceFormat::kAuto;
  }

  if (scenario->sharded) return run_scale_scenario(cli, *scenario, cfg, as_json);

  // Classic scenarios: the quantised network mode runs the epoch-barrier
  // loop and honours the PDES knobs; the zero-lookahead modes cannot, so a
  // requested count is called out instead of silently dropped (results are
  // identical either way - this is purely a you-asked-for-parallelism-and-
  // did-not-get-it warning).
  const net::NetworkMode net_mode = cfg.effective_network_mode();
  if (net::network_mode_info(net_mode).shardable) {
    cfg.system.shards = static_cast<int>(cli.get_int("shards", cfg.system.shards));
    cfg.system.threads = static_cast<int>(cli.get_int("threads", cfg.system.threads));
  } else if (cli.has("shards") || cli.has("threads")) {
    std::cerr << "scenario_runner: warning: --shards/--threads ignored: scenario '"
              << scenario->name << "' runs the zero-lookahead '"
              << net::network_mode_info(net_mode).name
              << "' network model on the serial engine (see net/network_model.hpp)\n";
  }

  std::cerr << "=== " << scenario->name << " ===\n"
            << scenario->description << "\n"
            << "nodes=" << cfg.nodes << " workflows/node=" << cfg.workflows_per_node
            << " algorithm=" << cfg.algorithm << " horizon=" << cfg.system.horizon_s / 3600.0
            << "h seed=" << cfg.seed;
  if (net::network_mode_info(net_mode).shardable) {
    std::cerr << " epoch=" << cfg.system.quantised_epoch_s << "s shards=" << cfg.system.shards
              << " threads=" << cfg.system.threads;
  }
  std::cerr << "\n\n";

  const auto result = exp::run_experiment(cfg);

  if (as_json) {
    // Keep stdout pure JSON (the digest goes to stderr with the banner).
    exp::write_results_json(std::cout, {result});
    std::cerr << "result_digest: " << exp::result_digest(result) << "\n";
  } else {
    exp::print_summary_table(std::cout, {result});
    std::cout << "\nthroughput over time:\n";
    exp::print_time_series(std::cout, {result}, "throughput");
    std::cout << "result_digest: " << exp::result_digest(result) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = util::Config::from_args(argc, argv);
  const bool as_json = cli.get_bool("json", false);
  // Accept both --run=NAME and a bare positional scenario name. A bare
  // `--run` flag parses as the value "true" (util::Config flag form); treat
  // it as an empty name so it errors below instead of hunting for a
  // scenario literally called "true".
  std::string name = cli.get_string("run", "");
  if (name == "true") name.clear();
  const bool run_requested = cli.has("run");
  if (name.empty() && !cli.positional().empty()) name = cli.positional().front();

  if (cli.get_bool("digest", false)) {
    return emit_digests(name, static_cast<int>(cli.get_int("shards", 1)),
                        static_cast<int>(cli.get_int("threads", 1)));
  }
  // Accept --describe=NAME, `--describe NAME` (positional) and
  // `--describe --run=NAME`.
  std::string describe = cli.get_string("describe", "");
  if (describe == "true") describe = name;  // bare flag: use the name operand
  if (cli.has("describe") && describe.empty()) {
    std::cerr << "scenario_runner: --describe needs a scenario name (try --list)\n";
    return 1;
  }
  if (!describe.empty()) return describe_scenario(describe, as_json);
  // An explicit --run with no usable name must not silently fall through to
  // the list (scripts would read exit 0 as "scenario ran").
  if (run_requested && name.empty()) {
    std::cerr << "scenario_runner: --run needs a scenario name (try --list)\n";
    return 1;
  }
  if (cli.get_bool("list", false) || name.empty()) return list_scenarios(as_json);
  return run_scenario(cli, name, as_json);
}
