// Scenario library front-end.
//
//   scenario_runner --list [--json]          enumerate registered scenarios
//   scenario_runner --run=NAME [overrides]   run one scenario at full scale
//   scenario_runner --digest [--run=NAME]    conformance digests (golden doc)
//
// `--digest` emits the canonical golden-digest document for every registered
// scenario (or just NAME) at the small-n conformance preset — byte-identical
// to tests/scenario/golden_digests.json, so regenerating the goldens is
//
//   ./scenario_runner --digest > tests/scenario/golden_digests.json
//
// Run overrides: --nodes, --workflows, --seed, --hours, --algorithm,
// --small (applies the conformance preset before running).
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "exp/reporters.hpp"
#include "exp/scenario.hpp"
#include "util/config.hpp"
#include "util/json.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace dpjit;

int list_scenarios(bool as_json) {
  const auto& reg = exp::scenario_registry();
  if (as_json) {
    std::cout << "[\n";
    const auto& all = reg.all();
    for (std::size_t i = 0; i < all.size(); ++i) {
      const auto& s = all[i];
      std::cout << "  {\"name\": \"" << util::json_escape(s.name) << "\", \"tier\": \""
                << exp::to_string(s.tier) << "\", \"paper_section\": \""
                << util::json_escape(s.paper_section) << "\", \"description\": \""
                << util::json_escape(s.description) << "\"}" << (i + 1 < all.size() ? "," : "")
                << "\n";
    }
    std::cout << "]\n";
    return 0;
  }
  util::TablePrinter table({"scenario", "tier", "paper", "description"});
  for (const auto& s : reg.all()) {
    table.add_row({s.name, std::string(exp::to_string(s.tier)),
                   s.paper_section.empty() ? "-" : s.paper_section, s.description});
  }
  table.print(std::cout);
  std::cout << "\n" << reg.size() << " scenarios. Run one: scenario_runner --run=<name>\n";
  return 0;
}

int emit_digests(const std::string& only) {
  const auto& reg = exp::scenario_registry();
  std::vector<std::pair<std::string, std::uint64_t>> digests;
  for (const auto& s : reg.all()) {
    if (!only.empty() && s.name != only) continue;
    const int n = exp::conformance_nodes(s.config().nodes);
    std::cerr << "digesting " << s.name << " (n=" << n << ")...\n";
    digests.emplace_back(s.name, exp::conformance_digest(s));
  }
  if (!only.empty() && digests.empty()) {
    std::cerr << "scenario_runner: unknown scenario '" << only << "' (try --list)\n";
    return 1;
  }
  exp::write_digest_document(std::cout, digests);
  return 0;
}

int run_scenario(const util::Config& cli, const std::string& name, bool as_json) {
  const auto* scenario = exp::scenario_registry().find(name);
  if (scenario == nullptr) {
    std::cerr << "scenario_runner: unknown scenario '" << name << "' (try --list)\n";
    return 1;
  }

  exp::ExperimentConfig cfg = scenario->config();
  if (cli.get_bool("small", false)) cfg = exp::conformance_preset(std::move(cfg));
  cfg.algorithm = cli.get_string("algorithm", cfg.algorithm);
  cfg.nodes = static_cast<int>(cli.get_int("nodes", cfg.nodes));
  cfg.workflows_per_node =
      static_cast<int>(cli.get_int("workflows", cfg.workflows_per_node));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.system.horizon_s = cli.get_double("hours", cfg.system.horizon_s / 3600.0) * 3600.0;

  std::cerr << "=== " << scenario->name << " ===\n"
            << scenario->description << "\n"
            << "nodes=" << cfg.nodes << " workflows/node=" << cfg.workflows_per_node
            << " algorithm=" << cfg.algorithm << " horizon=" << cfg.system.horizon_s / 3600.0
            << "h seed=" << cfg.seed << "\n\n";

  const auto result = exp::run_experiment(cfg);

  if (as_json) {
    // Keep stdout pure JSON (the digest goes to stderr with the banner).
    exp::write_results_json(std::cout, {result});
    std::cerr << "result_digest: " << exp::result_digest(result) << "\n";
  } else {
    exp::print_summary_table(std::cout, {result});
    std::cout << "\nthroughput over time:\n";
    exp::print_time_series(std::cout, {result}, "throughput");
    std::cout << "result_digest: " << exp::result_digest(result) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = util::Config::from_args(argc, argv);
  const bool as_json = cli.get_bool("json", false);
  // Accept both --run=NAME and a bare positional scenario name.
  std::string name = cli.get_string("run", "");
  if (name.empty() && !cli.positional().empty()) name = cli.positional().front();

  if (cli.get_bool("digest", false)) return emit_digests(name);
  if (cli.get_bool("list", false) || name.empty()) return list_scenarios(as_json);
  return run_scenario(cli, name, as_json);
}
